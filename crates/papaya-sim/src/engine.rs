//! The single-task training simulation.
//!
//! One [`Simulation`] runs one federated task (synchronous or asynchronous)
//! over a synthetic device population with a pluggable
//! [`ClientTrainer`], and produces the traces every figure of the paper is
//! built from: loss over virtual time, utilization, communication trips,
//! server-update frequency, participation distributions, and staleness.
//!
//! The client lifecycle follows Section 6.1: selection (with a small
//! selection latency), download, local training for the device's execution
//! time, then report/upload.  Clients that drop out, crash, or exceed the
//! training timeout are replaced immediately (Section 6.2); in synchronous
//! mode the round closes as soon as the aggregation goal is met and all
//! still-running clients are aborted (over-selection discards their work).
//!
//! All server-side per-task state lives in [`TaskRuntime`]; this module owns
//! only what a *driver* owns — the clock, the event queue, client selection
//! from the population, and the stop conditions.  The multi-tenant driver in
//! [`crate::multi_task`] reuses the same runtime underneath a Coordinator /
//! Selector control plane.

use crate::events::{EventKind, EventQueue, SimTime};
use crate::metrics::{MetricsCollector, MetricsSummary};
use crate::sampling::SamplingPool;
pub use crate::task_runtime::ServerOptimizerKind;
use crate::task_runtime::TaskRuntime;
use papaya_core::client::ClientTrainer;
use papaya_core::config::TaskConfig;
use papaya_data::population::Population;
use papaya_nn::params::ParamVec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;
use std::sync::Arc;

/// Configuration of one simulation run.
#[derive(Clone, Debug)]
pub struct SimulationConfig {
    /// The federated task being trained.
    pub task: TaskConfig,
    /// Stop once the evaluated population loss drops to this value.
    pub target_loss: Option<f64>,
    /// Hard stop on virtual time, in seconds.
    pub max_virtual_time_s: f64,
    /// Hard stop on the number of client updates received.
    pub max_client_updates: Option<u64>,
    /// Virtual seconds between evaluations.
    pub eval_interval_s: f64,
    /// Number of clients sampled (once) for evaluation.
    pub eval_sample_size: usize,
    /// Delay between a client being selected and starting to train.
    pub selection_latency_s: f64,
    /// Interval of the utilization sampler.
    pub utilization_sample_interval_s: f64,
    /// Server optimizer applied to aggregated deltas.
    pub server_optimizer: ServerOptimizerKind,
    /// RNG seed controlling selection, dropouts, and local-training noise.
    pub seed: u64,
}

impl SimulationConfig {
    /// Creates a configuration with sensible defaults for the given task.
    pub fn new(task: TaskConfig) -> Self {
        SimulationConfig {
            task,
            target_loss: None,
            max_virtual_time_s: 200.0 * 3600.0,
            max_client_updates: None,
            eval_interval_s: 300.0,
            eval_sample_size: 200,
            selection_latency_s: 2.0,
            utilization_sample_interval_s: 60.0,
            server_optimizer: ServerOptimizerKind::FedAvg,
            seed: 0,
        }
    }

    /// Sets the target loss stopping criterion.
    pub fn with_target_loss(mut self, target: f64) -> Self {
        self.target_loss = Some(target);
        self
    }

    /// Sets the virtual-time budget in hours.
    pub fn with_max_virtual_time_hours(mut self, hours: f64) -> Self {
        self.max_virtual_time_s = hours * 3600.0;
        self
    }

    /// Sets the client-update budget.
    pub fn with_max_client_updates(mut self, updates: u64) -> Self {
        self.max_client_updates = Some(updates);
        self
    }

    /// Sets the evaluation interval in virtual seconds.
    pub fn with_eval_interval_s(mut self, interval: f64) -> Self {
        self.eval_interval_s = interval;
        self
    }

    /// Sets the evaluation sample size.
    pub fn with_eval_sample_size(mut self, n: usize) -> Self {
        self.eval_sample_size = n;
        self
    }

    /// Sets the server optimizer.
    pub fn with_server_optimizer(mut self, kind: ServerOptimizerKind) -> Self {
        self.server_optimizer = kind;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Why a simulation stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The evaluated loss reached the target.
    TargetLossReached,
    /// The virtual-time budget was exhausted.
    MaxVirtualTime,
    /// The client-update budget was exhausted.
    MaxClientUpdates,
}

/// The outcome of a simulation run.
#[derive(Clone, Debug)]
pub struct SimulationResult {
    /// Why the run stopped.
    pub stop_reason: StopReason,
    /// Virtual hours at which the target loss was reached, if it was.
    pub hours_to_target: Option<f64>,
    /// Last evaluated population loss.
    pub final_loss: f64,
    /// Final server model version.
    pub final_version: u64,
    /// Total virtual hours simulated.
    pub virtual_hours: f64,
    /// Server model updates performed.
    pub server_updates: u64,
    /// Client updates received at the server.
    pub comm_trips: u64,
    /// Final model parameters.
    pub final_params: ParamVec,
    /// Raw metric traces.
    pub metrics: MetricsCollector,
    /// Summary statistics.
    pub summary: MetricsSummary,
}

/// A single-task simulation.
pub struct Simulation {
    config: SimulationConfig,
    population: Population,
    trainer: Arc<dyn ClientTrainer>,
}

impl Simulation {
    /// Creates a simulation over the given population and client trainer.
    ///
    /// # Panics
    ///
    /// Panics if the population is empty.
    pub fn new(
        config: SimulationConfig,
        population: Population,
        trainer: Arc<dyn ClientTrainer>,
    ) -> Self {
        assert!(!population.is_empty(), "population must not be empty");
        Simulation {
            config,
            population,
            trainer,
        }
    }

    /// Runs the simulation to completion and returns the result.
    pub fn run(&self) -> SimulationResult {
        SimulationState::new(&self.config, &self.population, self.trainer.clone()).run()
    }
}

/// Draws `sample` distinct evaluation client ids without replacement.
pub(crate) fn sample_eval_ids(
    rng: &mut StdRng,
    population_len: usize,
    sample: usize,
) -> Vec<usize> {
    let sample = sample.min(population_len).max(1);
    let mut chosen = HashSet::with_capacity(sample);
    let mut eval_ids = Vec::with_capacity(sample);
    while eval_ids.len() < sample {
        let id = rng.gen_range(0..population_len);
        if chosen.insert(id) {
            eval_ids.push(id);
        }
    }
    eval_ids
}

struct SimulationState<'a> {
    config: &'a SimulationConfig,
    population: &'a Population,
    rng: StdRng,
    queue: EventQueue,
    runtime: TaskRuntime,
    pool: SamplingPool,
    next_participation_id: u64,
    now: SimTime,
}

impl<'a> SimulationState<'a> {
    fn new(
        config: &'a SimulationConfig,
        population: &'a Population,
        trainer: Arc<dyn ClientTrainer>,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(config.seed);
        // Fixed evaluation sample.
        let eval_ids = sample_eval_ids(&mut rng, population.len(), config.eval_sample_size);
        let runtime = TaskRuntime::new(
            config.task.clone(),
            config.server_optimizer,
            trainer,
            eval_ids,
            config.seed,
            config.target_loss,
        );
        SimulationState {
            config,
            population,
            rng,
            queue: EventQueue::new(),
            runtime,
            pool: SamplingPool::new(population.len()),
            next_participation_id: 0,
            now: 0.0,
        }
    }

    fn run(mut self) -> SimulationResult {
        self.fill_demand();
        self.queue.schedule(0.0, EventKind::Evaluate);
        self.queue.schedule(0.0, EventKind::SampleUtilization);

        let mut stop_reason = StopReason::MaxVirtualTime;
        while let Some(event) = self.queue.pop() {
            if event.time > self.config.max_virtual_time_s {
                stop_reason = StopReason::MaxVirtualTime;
                self.now = self.config.max_virtual_time_s;
                break;
            }
            self.now = event.time;
            match event.kind {
                EventKind::ClientFinished {
                    client_id,
                    participation_id,
                } => {
                    self.handle_client_finished(client_id, participation_id);
                    if let Some(max) = self.config.max_client_updates {
                        if self.runtime.metrics().comm_trips >= max {
                            stop_reason = StopReason::MaxClientUpdates;
                            break;
                        }
                    }
                }
                EventKind::ClientFailed {
                    client_id: _,
                    participation_id,
                } => {
                    if let Some(freed_client) = self.runtime.client_failed(participation_id) {
                        self.pool.release(freed_client);
                        self.fill_demand();
                    }
                }
                EventKind::Evaluate => {
                    self.runtime.evaluate(self.now);
                    if self.runtime.target_reached() {
                        stop_reason = StopReason::TargetLossReached;
                        break;
                    }
                    self.queue
                        .schedule(self.now + self.config.eval_interval_s, EventKind::Evaluate);
                }
                EventKind::SampleUtilization => {
                    self.runtime.record_utilization(self.now);
                    self.queue.schedule(
                        self.now + self.config.utilization_sample_interval_s,
                        EventKind::SampleUtilization,
                    );
                }
                _ => unreachable!("single-task simulation schedules no multi-task events"),
            }
        }

        // Final evaluation so `final_loss` reflects the last model.
        self.runtime.evaluate(self.now);

        let now = self.now;
        let (metrics, final_params, final_version, final_loss, hours_to_target) =
            self.runtime.into_parts();
        let summary = metrics.summarize(now);
        SimulationResult {
            stop_reason,
            hours_to_target,
            final_loss,
            final_version,
            virtual_hours: now / 3600.0,
            server_updates: metrics.server_updates,
            comm_trips: metrics.comm_trips,
            final_params,
            summary,
            metrics,
        }
    }

    fn fill_demand(&mut self) {
        let demand = self.runtime.demand();
        for _ in 0..demand {
            if !self.select_one_client() {
                break; // population exhausted
            }
        }
        self.runtime.record_utilization(self.now);
    }

    /// Selects one idle device uniformly at random; returns false when every
    /// device is already participating.
    fn select_one_client(&mut self) -> bool {
        let client_id = match self.pool.acquire_random(&mut self.rng) {
            Some(id) => id,
            None => return false,
        };
        let device = self.population.device(client_id);
        let participation_id = self.next_participation_id;
        self.next_participation_id += 1;

        let timeout = self.config.task.client_timeout_s;
        let start = self.now + self.config.selection_latency_s;
        let drops_out = self.rng.gen::<f64>() < device.dropout_prob;
        let exceeds_timeout = device.exceeds_timeout(timeout);
        let execution_time = device.clamped_execution_time(timeout);

        self.runtime
            .begin_participation(participation_id, client_id, execution_time);

        if drops_out {
            // The client fails partway through its (clamped) execution.
            let fraction: f64 = self.rng.gen_range(0.05..0.95);
            self.queue.schedule(
                start + fraction * execution_time,
                EventKind::ClientFailed {
                    client_id,
                    participation_id,
                },
            );
        } else if exceeds_timeout {
            // The client is aborted at the timeout.
            self.queue.schedule(
                start + timeout,
                EventKind::ClientFailed {
                    client_id,
                    participation_id,
                },
            );
        } else {
            self.queue.schedule(
                start + execution_time,
                EventKind::ClientFinished {
                    client_id,
                    participation_id,
                },
            );
        }
        true
    }

    fn handle_client_finished(&mut self, client_id: usize, participation_id: u64) {
        let outcome = match self.runtime.offer_update(participation_id, self.now) {
            Some(outcome) => outcome,
            None => return, // aborted earlier (round ended or staleness abort)
        };
        self.pool.release(client_id);
        for freed in &outcome.freed {
            self.pool.release(freed.client_id);
        }
        if outcome.round_ended {
            self.runtime.record_utilization(self.now);
        }
        self.fill_demand();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use papaya_core::surrogate::{SurrogateConfig, SurrogateObjective};
    use papaya_data::population::PopulationConfig;

    fn population(n: usize) -> Population {
        Population::generate(&PopulationConfig::default().with_size(n), 17)
    }

    fn trainer(pop: &Population) -> Arc<SurrogateObjective> {
        Arc::new(SurrogateObjective::new(pop, SurrogateConfig::default(), 17))
    }

    fn run(task: TaskConfig, hours: f64, pop_size: usize) -> SimulationResult {
        let pop = population(pop_size);
        let t = trainer(&pop);
        let config = SimulationConfig::new(task)
            .with_max_virtual_time_hours(hours)
            .with_eval_interval_s(600.0)
            .with_seed(3);
        Simulation::new(config, pop, t).run()
    }

    #[test]
    fn async_simulation_trains_and_reduces_loss() {
        let result = run(TaskConfig::async_task("t", 64, 16), 3.0, 1000);
        assert!(result.server_updates > 10, "{}", result.server_updates);
        assert_eq!(result.final_version, result.server_updates);
        let first_loss = result.metrics.loss_curve.first().unwrap().1;
        assert!(
            result.final_loss < 0.5 * first_loss,
            "loss {} -> {}",
            first_loss,
            result.final_loss
        );
    }

    #[test]
    fn sync_simulation_trains_and_counts_rounds() {
        let result = run(TaskConfig::sync_task("t", 65, 0.3), 6.0, 1000);
        assert!(result.server_updates > 2);
        assert_eq!(
            result.metrics.round_durations_s.len() as u64,
            result.server_updates
        );
        assert!(result.metrics.mean_round_duration_s() > 0.0);
        // Over-selection aborts some still-running clients each round.
        assert!(result.metrics.aborted_by_round_end > 0);
    }

    #[test]
    fn async_has_more_server_updates_than_sync_in_same_time() {
        let async_result = run(TaskConfig::async_task("a", 64, 16), 2.0, 800);
        let sync_result = run(TaskConfig::sync_task("s", 64, 0.3), 2.0, 800);
        assert!(
            async_result.server_updates > 2 * sync_result.server_updates,
            "async {} vs sync {}",
            async_result.server_updates,
            sync_result.server_updates
        );
    }

    #[test]
    fn async_utilization_is_higher_than_sync() {
        let async_result = run(TaskConfig::async_task("a", 50, 10), 2.0, 800);
        let sync_result = run(TaskConfig::sync_task("s", 50, 0.0), 2.0, 800);
        let mean_active = |r: &SimulationResult| {
            let t = &r.metrics.utilization_trace;
            t.iter().map(|&(_, a)| a as f64).sum::<f64>() / t.len() as f64
        };
        assert!(mean_active(&async_result) > mean_active(&sync_result));
        // AsyncFL stays close to the concurrency target.
        assert!(mean_active(&async_result) > 40.0);
    }

    #[test]
    fn concurrency_bound_is_respected() {
        let result = run(TaskConfig::async_task("t", 32, 8), 1.0, 500);
        assert!(result
            .metrics
            .utilization_trace
            .iter()
            .all(|&(_, active)| active <= 32));
    }

    #[test]
    fn target_loss_stops_early() {
        let pop = population(800);
        let t = trainer(&pop);
        let initial_loss = {
            let all: Vec<usize> = (0..pop.len()).collect();
            t.evaluate(&t.initial_parameters(), &all)
        };
        let config = SimulationConfig::new(TaskConfig::async_task("t", 64, 16))
            .with_max_virtual_time_hours(20.0)
            .with_target_loss(initial_loss * 0.3)
            .with_eval_interval_s(300.0)
            .with_seed(5);
        let result = Simulation::new(config, pop, t).run();
        assert_eq!(result.stop_reason, StopReason::TargetLossReached);
        assert!(result.hours_to_target.is_some());
        assert!(result.virtual_hours < 20.0);
    }

    #[test]
    fn max_client_updates_stops_run() {
        let pop = population(500);
        let t = trainer(&pop);
        let config = SimulationConfig::new(TaskConfig::async_task("t", 32, 8))
            .with_max_virtual_time_hours(50.0)
            .with_max_client_updates(200)
            .with_seed(1);
        let result = Simulation::new(config, pop, t).run();
        assert_eq!(result.stop_reason, StopReason::MaxClientUpdates);
        assert_eq!(result.comm_trips, 200);
    }

    #[test]
    fn simulation_is_deterministic_for_same_seed() {
        let a = run(TaskConfig::async_task("t", 32, 8), 1.0, 400);
        let b = run(TaskConfig::async_task("t", 32, 8), 1.0, 400);
        assert_eq!(a.server_updates, b.server_updates);
        assert_eq!(a.comm_trips, b.comm_trips);
        assert_eq!(a.final_loss, b.final_loss);
    }

    #[test]
    fn dropouts_are_recorded_and_replaced() {
        let pop = Population::generate(
            &PopulationConfig::default().with_size(600).with_dropout(0.3),
            9,
        );
        let t = trainer(&pop);
        let config = SimulationConfig::new(TaskConfig::async_task("t", 32, 8))
            .with_max_virtual_time_hours(1.0)
            .with_seed(9);
        let result = Simulation::new(config, pop, t).run();
        assert!(result.metrics.failed_participations > 0);
        // Training still progresses despite failures.
        assert!(result.server_updates > 0);
    }

    #[test]
    fn tight_staleness_bound_rejects_updates() {
        let pop = population(800);
        let t = trainer(&pop);
        let task = TaskConfig::async_task("t", 256, 4).with_max_staleness(1);
        let config = SimulationConfig::new(task)
            .with_max_virtual_time_hours(1.0)
            .with_seed(2);
        let result = Simulation::new(config, pop, t).run();
        // With 256 concurrent clients and K = 4, staleness frequently
        // exceeds 1, so some updates must be rejected or clients aborted.
        assert!(result.metrics.rejected_stale_updates + result.metrics.failed_participations > 0);
    }

    #[test]
    fn sync_without_over_selection_has_no_aborted_clients_at_round_end() {
        let result = run(TaskConfig::sync_task("t", 40, 0.0), 4.0, 800);
        // Without over-selection the round waits for every member (failures
        // are replaced), so nobody is aborted when the round closes.
        assert_eq!(result.metrics.aborted_by_round_end, 0);
        assert!(result.metrics.discarded_updates == 0);
    }

    #[test]
    fn selection_stays_fast_when_population_is_saturated() {
        // Concurrency equal to the population size: every selection after
        // warm-up happens from a nearly-empty free pool, the regime the old
        // rejection-sampling loop handled in O(population) per pick.
        let result = run(TaskConfig::async_task("t", 120, 8), 1.0, 120);
        assert!(result.server_updates > 0);
        assert!(result
            .metrics
            .utilization_trace
            .iter()
            .all(|&(_, active)| active <= 120));
    }
}
