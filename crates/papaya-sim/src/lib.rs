//! Discrete-event simulation of the PAPAYA production system.
//!
//! The paper's evaluation runs on ~100 million phones; this crate reproduces
//! the *system behaviour* — client selection, participation, stragglers,
//! over-selection, buffered asynchronous aggregation, utilization, failure
//! recovery — as a deterministic discrete-event simulation over the synthetic
//! populations from `papaya-data`, while delegating the learning itself to a
//! [`papaya_core::client::ClientTrainer`] (the real LSTM or the fast
//! surrogate objective).
//!
//! * [`events`] — the simulated clock and event queue;
//! * [`executor`] — the deterministic parallel client-training pool: local
//!   training runs speculatively on worker threads while the event loop
//!   stays sequential, so reports are bit-identical at any thread count;
//! * [`scenario`] — the unified entrypoint: one [`Scenario`] builder
//!   composing tasks, population, fleet size, crash schedule, eval policy,
//!   and seed, returning one [`Report`] for every workload shape;
//! * [`engine`] — the legacy single-task front-end, a thin shim over
//!   [`scenario`];
//! * [`metrics`] — traces and summary statistics (utilization, communication
//!   trips, server updates per hour, participation distributions);
//! * [`task_runtime`] — per-task server-side state (model, optimizer, a
//!   `Box<dyn Aggregator>` strategy, in-flight participations, per-task
//!   metrics) shared by both scenario paths;
//! * [`cluster`] — the control plane: Coordinator, Selectors, persistent
//!   Aggregators, task assignment, heartbeats, and failure recovery
//!   (Sections 4, 6 and Appendix E.4);
//! * [`control_plane`] — the Coordinator promoted to an event-sourced
//!   service: an append-only event log with checkpoint/replay restore, a
//!   reconciliation pass that re-places orphaned and pending tasks, and a
//!   Prometheus-style counter surface;
//! * [`multi_task`] — the legacy multi-tenant front-end, a thin shim over
//!   [`scenario`]'s fleet path (Sections 4, 6.2–6.3, Appendix E.4);
//! * [`sampling`] — O(1) uniform sampling of free devices from a shared,
//!   possibly saturated population;
//! * [`client_runtime`] — the on-device runtime: eligibility criteria (idle,
//!   charging, unmetered network), the example store with its retention
//!   policy, and participation-history throttling (Section 4, Appendix E.5).
//!
//! # Example
//!
//! ```
//! use papaya_core::TaskConfig;
//! use papaya_data::population::{Population, PopulationConfig};
//! use papaya_sim::scenario::{EvalPolicy, RunLimits, Scenario};
//!
//! let population = Population::generate(&PopulationConfig::default().with_size(500), 1);
//! let report = Scenario::builder()
//!     .population(population)
//!     .task(TaskConfig::async_task("demo", 32, 8))
//!     .limits(RunLimits::default().with_max_virtual_time_hours(0.5))
//!     .eval(EvalPolicy::default().with_interval_s(600.0))
//!     .seed(1)
//!     .build()
//!     .run();
//! assert!(report.tasks[0].server_updates() > 0);
//! ```

pub mod client_runtime;
pub mod cluster;
pub mod control_plane;
pub mod engine;
pub mod events;
pub mod executor;
pub mod metrics;
pub mod multi_task;
pub mod sampling;
pub mod scenario;
pub mod task_runtime;

pub use control_plane::{ControlEvent, ControlPlaneService, Correction, EventLog, FleetStatus};
pub use engine::{Simulation, SimulationConfig, SimulationResult};
pub use executor::{Executor, ExecutorStats, Parallelism};
pub use metrics::{
    ControlPlaneStats, FleetSummary, MetricsSummary, ParticipationRecord, TaskSummary,
};
pub use multi_task::{MultiTaskConfig, MultiTaskResult, MultiTaskSimulation};
pub use scenario::{
    EvalPolicy, FleetSpec, InjectedCrash, Report, RunLimits, Scenario, ScenarioBuilder, StopReason,
    TaskReport, TierPolicy,
};
pub use task_runtime::{ServerOptimizerKind, TaskRuntime};
