//! Discrete-event simulation of the PAPAYA production system.
//!
//! The paper's evaluation runs on ~100 million phones; this crate reproduces
//! the *system behaviour* — client selection, participation, stragglers,
//! over-selection, buffered asynchronous aggregation, utilization, failure
//! recovery — as a deterministic discrete-event simulation over the synthetic
//! populations from `papaya-data`, while delegating the learning itself to a
//! [`papaya_core::client::ClientTrainer`] (the real LSTM or the fast
//! surrogate objective).
//!
//! * [`events`] — the simulated clock and event queue;
//! * [`engine`] — the single-task training simulation used by every figure
//!   (SyncFL with/without over-selection, AsyncFL with any aggregation goal);
//! * [`metrics`] — traces and summary statistics (utilization, communication
//!   trips, server updates per hour, participation distributions);
//! * [`task_runtime`] — per-task server-side state (model, optimizer,
//!   aggregator, in-flight participations, per-task metrics) shared by the
//!   single-task engine and the multi-tenant driver;
//! * [`cluster`] — the control plane: Coordinator, Selectors, persistent
//!   Aggregators, task assignment, heartbeats, and failure recovery
//!   (Sections 4, 6 and Appendix E.4);
//! * [`multi_task`] — the multi-tenant simulation: many tasks placed on
//!   persistent Aggregators by the Coordinator, one shared device
//!   population routed through Selectors, and injectable Aggregator
//!   failures with task reassignment (Sections 4, 6.2–6.3, Appendix E.4);
//! * [`sampling`] — O(1) uniform sampling of free devices from a shared,
//!   possibly saturated population;
//! * [`client_runtime`] — the on-device runtime: eligibility criteria (idle,
//!   charging, unmetered network), the example store with its retention
//!   policy, and participation-history throttling (Section 4, Appendix E.5).
//!
//! # Example
//!
//! ```
//! use papaya_core::{SurrogateObjective, TaskConfig};
//! use papaya_core::surrogate::SurrogateConfig;
//! use papaya_data::population::{Population, PopulationConfig};
//! use papaya_sim::engine::{Simulation, SimulationConfig};
//! use std::sync::Arc;
//!
//! let population = Population::generate(&PopulationConfig::default().with_size(500), 1);
//! let trainer = Arc::new(SurrogateObjective::new(&population, SurrogateConfig::default(), 1));
//! let config = SimulationConfig::new(TaskConfig::async_task("demo", 32, 8))
//!     .with_max_virtual_time_hours(0.5)
//!     .with_seed(1);
//! let result = Simulation::new(config, population, trainer).run();
//! assert!(result.server_updates > 0);
//! ```

pub mod client_runtime;
pub mod cluster;
pub mod engine;
pub mod events;
pub mod metrics;
pub mod multi_task;
pub mod sampling;
pub mod task_runtime;

pub use engine::{Simulation, SimulationConfig, SimulationResult, StopReason};
pub use metrics::{
    ControlPlaneStats, FleetSummary, MetricsSummary, ParticipationRecord, TaskSummary,
};
pub use multi_task::{MultiTaskConfig, MultiTaskResult, MultiTaskSimulation};
pub use task_runtime::{ServerOptimizerKind, TaskRuntime};
