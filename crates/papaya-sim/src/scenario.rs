//! The unified simulation entrypoint: one builder for every workload shape.
//!
//! Historically the crate had two front-ends — a single-task `Simulation`
//! and a multi-tenant `MultiTaskSimulation` — with duplicated config
//! builders, run loops, and result types.  A [`Scenario`] subsumes both: it
//! composes tasks, a shared device population, an optional control-plane
//! fleet (Aggregators/Selectors), a crash schedule, run limits, an
//! evaluation policy, and a seed, and returns one unified [`Report`]
//! (per-task [`TaskReport`]s plus a fleet roll-up).  The old front-ends
//! survive as thin shims over `Scenario`.
//!
//! Two execution shapes:
//!
//! * **Direct** (no [`FleetSpec`]): exactly one task, driven straight off
//!   the event queue — selection, dropouts, timeouts, evaluation.  This is
//!   the configuration behind every single-task figure of the paper.
//! * **Fleet** (with a [`FleetSpec`]): any number of tasks placed on
//!   persistent Aggregators by the Coordinator, devices routed through
//!   Selectors by capability tier, injectable Aggregator crashes with
//!   buffered-update loss and task reassignment (Sections 4, 6.2–6.3,
//!   Appendix E.4).
//!
//! # Quickstart
//!
//! ```
//! use papaya_core::TaskConfig;
//! use papaya_data::population::{Population, PopulationConfig};
//! use papaya_sim::scenario::{EvalPolicy, RunLimits, Scenario};
//!
//! let population = Population::generate(&PopulationConfig::default().with_size(500), 1);
//! let report = Scenario::builder()
//!     .population(population)
//!     .task(TaskConfig::async_task("demo", 32, 8))
//!     .limits(RunLimits::default().with_max_virtual_time_hours(0.5))
//!     .eval(EvalPolicy::default().with_interval_s(600.0))
//!     .seed(1)
//!     .build()
//!     .run();
//! assert_eq!(report.tasks.len(), 1);
//! assert!(report.tasks[0].server_updates() > 0);
//! println!("stopped: {}", report.stop_reason);
//! ```

use crate::cluster::{AggregatorId, RouteOutcome, Selector, TaskSpec};
use crate::control_plane::{ControlPlaneService, FleetStatus};
use crate::events::{EventKind, EventQueue, SimTime};
use crate::executor::{Executor, Parallelism};
use crate::metrics::{
    ControlPlaneStats, FleetSummary, MetricsCollector, MetricsSummary, TaskSummary,
};
use crate::sampling::{SamplingPool, DEFAULT_SHARD_CAPACITY};
use crate::task_runtime::{ServerOptimizerKind, TaskRuntime};
use papaya_core::adversary::AdversarySpec;
use papaya_core::client::ClientTrainer;
use papaya_core::config::{SecAggMode, TaskConfig, TrainingMode};
use papaya_core::dp::DpConfig;
use papaya_core::robust::{RobustConfig, RobustTelemetry};
use papaya_core::surrogate::{SurrogateConfig, SurrogateObjective};
use papaya_core::trace::{DecimatedTrace, TraceBudget};
use papaya_data::population::{DeviceProfile, Population};
use papaya_nn::params::ParamVec;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// Why a scenario stopped.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The evaluated loss reached the target (every task, for fleet runs).
    TargetLossReached,
    /// The virtual-time budget was exhausted.
    MaxVirtualTime,
    /// The client-update budget was exhausted.
    MaxClientUpdates,
    /// A DP task's cumulative `epsilon(target_delta)` reached its
    /// configured budget; releasing further aggregates would overspend the
    /// privacy guarantee, so the run stops.
    PrivacyBudgetExhausted,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StopReason::TargetLossReached => write!(f, "target loss reached"),
            StopReason::MaxVirtualTime => write!(f, "virtual-time budget exhausted"),
            StopReason::MaxClientUpdates => write!(f, "client-update budget exhausted"),
            StopReason::PrivacyBudgetExhausted => write!(f, "privacy budget exhausted"),
        }
    }
}

/// Stop conditions shared by every scenario shape.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RunLimits {
    /// Hard stop on virtual time, in seconds.
    pub max_virtual_time_s: f64,
    /// Hard stop on the number of client updates received (summed over
    /// tasks in fleet runs).
    pub max_client_updates: Option<u64>,
    /// Stop once the evaluated population loss drops to this value (every
    /// task, for fleet runs).
    pub target_loss: Option<f64>,
    /// Worker threads running client local training off the event-loop
    /// thread.  Reports are bit-identical at every setting (see
    /// [`crate::executor`]); the default is the sequential path.
    pub parallelism: Parallelism,
    /// Retention budget for the per-event metric traces (utilization, loss
    /// curve, participations).  The default keeps every sample; bounded
    /// budgets decimate deterministically (see [`papaya_core::trace`]) and
    /// are hashed into [`Report::fingerprint`], so a budgeted run never
    /// fingerprint-collides with an unbudgeted one.  Essential at
    /// million-client scale, where per-event traces would otherwise
    /// dominate resident memory.
    pub trace_budget: TraceBudget,
    /// Ids per shard of the free-device sampling pool (see
    /// [`crate::sampling::ShardedSamplingPool`]).  Affects memory and
    /// allocator behaviour only: the drawn client sequence — and therefore
    /// the fingerprint — is bit-identical at every setting.
    pub sampling_shard_capacity: usize,
}

impl Default for RunLimits {
    fn default() -> Self {
        RunLimits {
            max_virtual_time_s: 200.0 * 3600.0,
            max_client_updates: None,
            target_loss: None,
            parallelism: Parallelism::sequential(),
            trace_budget: TraceBudget::UNBOUNDED,
            sampling_shard_capacity: DEFAULT_SHARD_CAPACITY,
        }
    }
}

impl RunLimits {
    /// Sets the virtual-time budget in hours.
    pub fn with_max_virtual_time_hours(mut self, hours: f64) -> Self {
        self.max_virtual_time_s = hours * 3600.0;
        self
    }

    /// Sets the virtual-time budget in seconds.
    pub fn with_max_virtual_time_s(mut self, seconds: f64) -> Self {
        self.max_virtual_time_s = seconds;
        self
    }

    /// Sets the client-update budget.
    pub fn with_max_client_updates(mut self, updates: u64) -> Self {
        self.max_client_updates = Some(updates);
        self
    }

    /// Sets the target-loss stopping criterion.
    pub fn with_target_loss(mut self, target: f64) -> Self {
        self.target_loss = Some(target);
        self
    }

    /// Sets the client-training parallelism.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self
    }

    /// Caps every per-event metric trace at `max_samples` retained entries
    /// (deterministic stride decimation).
    pub fn with_trace_budget(mut self, max_samples: usize) -> Self {
        self.trace_budget = TraceBudget::bounded(max_samples);
        self
    }

    /// Sets the sampling pool's shard capacity (ids per shard).
    pub fn with_sampling_shard_capacity(mut self, capacity: usize) -> Self {
        self.sampling_shard_capacity = capacity;
        self
    }
}

/// When and how broadly to evaluate the population loss.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct EvalPolicy {
    /// Virtual seconds between evaluations.
    pub interval_s: f64,
    /// Number of clients sampled (once, per task) for evaluation.
    pub sample_size: usize,
}

impl Default for EvalPolicy {
    fn default() -> Self {
        EvalPolicy {
            interval_s: 300.0,
            sample_size: 200,
        }
    }
}

impl EvalPolicy {
    /// Sets the evaluation interval in virtual seconds.
    pub fn with_interval_s(mut self, interval_s: f64) -> Self {
        self.interval_s = interval_s;
        self
    }

    /// Sets the evaluation sample size.
    pub fn with_sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }
}

/// Maps a device's compute speed to the capability tier it reports at
/// check-in (Section 6.2, "constructing lists of eligible tasks"): tier 2
/// (fast) devices can train any task, tier 1 (standard) mid-size tasks,
/// tier 0 only unrestricted tasks.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TierPolicy {
    /// Speed factor at or above which a device reports tier 2.
    pub fast_speed: f64,
    /// Speed factor at or above which a device reports tier 1.
    pub standard_speed: f64,
}

impl Default for TierPolicy {
    fn default() -> Self {
        TierPolicy {
            fast_speed: 1.25,
            standard_speed: 0.75,
        }
    }
}

impl TierPolicy {
    /// Creates a policy with the given thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `fast_speed < standard_speed`.
    pub fn new(fast_speed: f64, standard_speed: f64) -> Self {
        assert!(
            fast_speed >= standard_speed,
            "fast threshold must be at least the standard threshold"
        );
        TierPolicy {
            fast_speed,
            standard_speed,
        }
    }

    /// The capability tier a device reports under this policy.
    pub fn tier(&self, device: &DeviceProfile) -> u8 {
        if device.speed_factor >= self.fast_speed {
            2
        } else if device.speed_factor >= self.standard_speed {
            1
        } else {
            0
        }
    }
}

/// Control-plane sizing and timing for fleet scenarios.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FleetSpec {
    /// Number of persistent Aggregator processes.
    pub aggregators: usize,
    /// Number of Selector processes routing client requests.
    pub selectors: usize,
    /// Interval of the control-plane sweep (heartbeats, failure detection,
    /// demand pooling, client assignment).
    pub control_plane_interval_s: f64,
    /// Interval at which Selectors refresh their assignment maps.
    pub selector_refresh_interval_s: f64,
    /// Heartbeat silence after which the Coordinator declares an Aggregator
    /// failed; must exceed `control_plane_interval_s`.
    pub heartbeat_timeout_s: f64,
}

impl FleetSpec {
    /// A fleet with the given process counts and default timing.
    pub fn new(aggregators: usize, selectors: usize) -> Self {
        FleetSpec {
            aggregators,
            selectors,
            control_plane_interval_s: 10.0,
            selector_refresh_interval_s: 45.0,
            heartbeat_timeout_s: 25.0,
        }
    }

    /// Sets the control-plane sweep interval.
    pub fn with_control_plane_interval_s(mut self, interval_s: f64) -> Self {
        self.control_plane_interval_s = interval_s;
        self
    }

    /// Sets the Selector refresh interval.
    pub fn with_selector_refresh_interval_s(mut self, interval_s: f64) -> Self {
        self.selector_refresh_interval_s = interval_s;
        self
    }

    /// Sets the heartbeat timeout.
    pub fn with_heartbeat_timeout_s(mut self, timeout_s: f64) -> Self {
        self.heartbeat_timeout_s = timeout_s;
        self
    }
}

/// An Aggregator failure injected at a fixed virtual time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InjectedCrash {
    /// When the Aggregator dies, in virtual seconds.
    pub time_s: f64,
    /// Which Aggregator dies.
    pub aggregator: AggregatorId,
}

/// An Aggregator recovery injected at a fixed virtual time: the process
/// comes back, heartbeats immediately, and the reconcile pass the heartbeat
/// triggers re-places any orphaned tasks onto it.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InjectedRecovery {
    /// When the Aggregator comes back, in virtual seconds.
    pub time_s: f64,
    /// Which Aggregator recovers.
    pub aggregator: AggregatorId,
}

/// End-of-run report for one task of a scenario.
#[derive(Clone, Debug)]
pub struct TaskReport {
    /// Task identifier (index into the scenario's task list).
    pub task_id: usize,
    /// Human-readable task name.
    pub name: String,
    /// Population loss at the first evaluation.
    pub initial_loss: f64,
    /// Population loss at the last evaluation.
    pub final_loss: f64,
    /// Virtual hours at which the target loss was reached, if it was.
    pub hours_to_target: Option<f64>,
    /// Final server model version.
    pub final_version: u64,
    /// Final model parameters.
    pub final_params: ParamVec,
    /// Times this task was moved to a new Aggregator after a failure.
    pub reassignments: u64,
    /// Buffered updates this task lost to Aggregator failures.
    pub lost_buffered_updates: u64,
    /// Summary statistics (rates, staleness, utilization).
    pub summary: MetricsSummary,
    /// Raw metric traces.
    pub metrics: MetricsCollector,
}

impl TaskReport {
    /// Client updates received at the server ("communication trips").
    pub fn comm_trips(&self) -> u64 {
        self.metrics.comm_trips
    }

    /// Server model updates performed.
    pub fn server_updates(&self) -> u64 {
        self.metrics.server_updates
    }

    /// The per-task summary in multi-tenant [`TaskSummary`] form.
    pub fn to_task_summary(&self) -> TaskSummary {
        TaskSummary {
            task_id: self.task_id,
            name: self.name.clone(),
            initial_loss: self.initial_loss,
            final_loss: self.final_loss,
            reassignments: self.reassignments,
            lost_buffered_updates: self.lost_buffered_updates,
            summary: self.summary.clone(),
        }
    }
}

/// The outcome of a scenario run: per-task reports plus the fleet roll-up.
#[derive(Clone, Debug)]
pub struct Report {
    /// Why the run stopped.
    pub stop_reason: StopReason,
    /// Total virtual hours simulated.
    pub virtual_hours: f64,
    /// Discrete events processed by the run loop (the perf harness divides
    /// this by wall-clock time for an events/sec throughput figure).
    pub events_processed: u64,
    /// Per-task end-of-run reports, in task order.
    pub tasks: Vec<TaskReport>,
    /// Cross-task roll-up including control-plane counters (zeroed for
    /// direct, fleet-less runs).
    pub fleet: FleetSummary,
}

/// FNV-1a accumulator used by [`Report::fingerprint`].
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }
}

/// Folds a trace's decimation parameters into the fingerprint, but only
/// when a budget is active: an unbounded trace hashes nothing extra, so
/// historical (pre-budget) fingerprints are preserved bit-for-bit, while a
/// budgeted run can never collide with an unbudgeted one that happens to
/// retain the same sample prefix.
fn hash_decimation<T>(h: &mut Fnv, trace: &DecimatedTrace<T>) {
    if trace.budget().is_bounded() {
        h.u64(trace.budget().max_samples() as u64);
        h.u64(trace.stride());
        h.u64(trace.offered());
    }
}

impl Report {
    /// The report of the only task of a direct scenario.
    ///
    /// # Panics
    ///
    /// Panics if the scenario ran more than one task.
    pub fn single(&self) -> &TaskReport {
        assert_eq!(
            self.tasks.len(),
            1,
            "scenario ran {} tasks",
            self.tasks.len()
        );
        &self.tasks[0]
    }

    /// A bit-exact digest of everything the run produced: stop reason,
    /// timing, every counter, the full loss curves, utilization and
    /// participation traces, and the bit patterns of the final model
    /// parameters of every task.  Two runs are bit-identical iff their
    /// fingerprints are equal — this is what the determinism suite and the
    /// perf harness compare across [`Parallelism`] settings.
    pub fn fingerprint(&self) -> String {
        let mut h = Fnv::new();
        h.u64(match self.stop_reason {
            StopReason::TargetLossReached => 0,
            StopReason::MaxVirtualTime => 1,
            StopReason::MaxClientUpdates => 2,
            StopReason::PrivacyBudgetExhausted => 3,
        });
        h.f64(self.virtual_hours);
        h.u64(self.events_processed);
        for task in &self.tasks {
            let m = &task.metrics;
            h.bytes(task.name.as_bytes());
            h.u64(m.comm_trips);
            h.u64(m.server_updates);
            h.u64(m.aggregated_updates);
            h.u64(m.rejected_stale_updates);
            h.u64(m.discarded_updates);
            h.u64(m.failed_participations);
            h.u64(m.aborted_by_round_end);
            h.u64(m.staleness_sum);
            h.u64(m.lost_buffered_updates);
            h.u64(m.secure.masked_updates);
            h.u64(m.secure.masked_discarded);
            h.u64(m.secure.tsa_key_releases);
            h.u64(m.secure.buffers_dropped_unreleased);
            h.u64(m.secure.out_of_range_releases);
            h.u64(m.secure.tee_bytes_in);
            h.u64(m.secure.tee_bytes_out);
            h.u64(m.secure.session_cache_hits);
            h.u64(m.secure.session_cache_misses);
            h.u64(m.secure.dh_exchanges_saved);
            for &(t, e) in &m.secure.quantization_error_trace {
                h.f64(t);
                h.f64(e);
            }
            h.u64(m.dp.accepted_updates);
            h.u64(m.dp.clipped_updates);
            h.u64(m.dp.releases);
            h.f64(m.dp.cumulative_epsilon);
            for release in &m.dp.release_trace {
                h.f64(release.time_s);
                h.f64(release.clip_fraction);
                h.f64(release.noise_std);
                h.f64(release.cumulative_epsilon);
            }
            // Robustness and adversary telemetry hash only when something
            // moved: a clear run, and a neutral-defense run with an honest
            // population, keep every pre-robustness fingerprint
            // bit-for-bit (same conditional-hash contract as
            // `hash_decimation` above).
            if m.robust != RobustTelemetry::default()
                || m.rejected_by_defense_updates > 0
                || m.attacked_updates > 0
            {
                h.u64(m.robust.rejected_non_finite);
                h.u64(m.robust.rejected_by_norm);
                h.u64(m.robust.estimator_releases);
                for release in &m.robust.estimator_trace {
                    h.f64(release.time_s);
                    h.u64(release.estimated_over);
                    h.f64(release.estimator_shift);
                }
                h.u64(m.rejected_by_defense_updates);
                h.u64(m.attacked_updates);
                for (&label, &count) in &m.attacks_by_label {
                    h.bytes(label.as_bytes());
                    h.u64(count);
                }
                for &(t, client) in &m.attack_trace {
                    h.f64(t);
                    h.u64(client as u64);
                }
                hash_decimation(&mut h, &m.attack_trace);
            }
            h.u64(task.reassignments);
            h.u64(task.final_version);
            h.f64(task.initial_loss);
            h.f64(task.final_loss);
            h.f64(task.hours_to_target.unwrap_or(f64::NEG_INFINITY));
            for &(t, loss) in &m.loss_curve {
                h.f64(t);
                h.f64(loss);
            }
            hash_decimation(&mut h, &m.loss_curve);
            for &(t, active) in &m.utilization_trace {
                h.f64(t);
                h.u64(active as u64);
            }
            hash_decimation(&mut h, &m.utilization_trace);
            for p in &m.participations {
                h.u64(p.client_id as u64);
                h.f64(p.execution_time_s);
                h.u64(p.num_examples as u64);
                h.u64(p.aggregated as u64);
            }
            hash_decimation(&mut h, &m.participations);
            for &d in &m.round_durations_s {
                h.f64(d);
            }
            for &w in task.final_params.as_slice() {
                h.bytes(&w.to_bits().to_le_bytes());
            }
        }
        let cp = &self.fleet.control_plane;
        h.u64(cp.aggregator_failures);
        h.u64(cp.task_reassignments);
        h.u64(cp.stale_route_refusals);
        h.u64(cp.lost_in_transit_updates);
        h.u64(cp.final_map_sequence);
        // Reconciliation-era counters are hashed only when the run exercised
        // them: historical scenarios (partial failure or no failure at all)
        // keep every field at zero, so their pinned fingerprints survive the
        // event-sourced control plane unchanged.
        if cp.tasks_orphaned > 0
            || cp.tasks_reconciled > 0
            || cp.pending_task_submissions > 0
            || cp.unknown_heartbeat_registrations > 0
            || cp.aggregator_recoveries > 0
        {
            h.u64(cp.tasks_orphaned);
            h.u64(cp.tasks_reconciled);
            h.u64(cp.pending_task_submissions);
            h.u64(cp.unknown_heartbeat_registrations);
            h.u64(cp.aggregator_recoveries);
        }
        format!(
            "{:?}/{}ev/{}tasks/{:016x}",
            self.stop_reason,
            self.events_processed,
            self.tasks.len(),
            h.0
        )
    }

    /// Consumes the report and returns the only task's report.
    ///
    /// # Panics
    ///
    /// Panics if the scenario ran more than one task.
    pub fn into_single(mut self) -> TaskReport {
        assert_eq!(
            self.tasks.len(),
            1,
            "scenario ran {} tasks",
            self.tasks.len()
        );
        // papaya-lint: allow(panic-hygiene) -- the assert directly above guarantees exactly one task; documented panic
        self.tasks.pop().expect("one task")
    }
}

/// A fully composed simulation, ready to run.  Build one with
/// [`Scenario::builder`].
pub struct Scenario {
    tasks: Vec<TaskConfig>,
    trainers: Vec<Arc<dyn ClientTrainer>>,
    population: Population,
    fleet: Option<FleetSpec>,
    crashes: Vec<InjectedCrash>,
    recoveries: Vec<InjectedRecovery>,
    control_plane_restore_s: Option<f64>,
    limits: RunLimits,
    eval: EvalPolicy,
    tier_policy: TierPolicy,
    selection_latency_s: f64,
    utilization_sample_interval_s: f64,
    server_optimizer: ServerOptimizerKind,
    seed: u64,
}

/// Builder for [`Scenario`]; see the module docs for a quickstart.
pub struct ScenarioBuilder {
    tasks: Vec<TaskConfig>,
    trainers: Vec<Option<Arc<dyn ClientTrainer>>>,
    population: Option<Population>,
    fleet: Option<FleetSpec>,
    crashes: Vec<InjectedCrash>,
    recoveries: Vec<InjectedRecovery>,
    control_plane_restore_s: Option<f64>,
    limits: RunLimits,
    eval: EvalPolicy,
    tier_policy: TierPolicy,
    selection_latency_s: f64,
    utilization_sample_interval_s: f64,
    server_optimizer: ServerOptimizerKind,
    secagg_override: Option<SecAggMode>,
    dp_override: Option<DpConfig>,
    robust_override: Option<RobustConfig>,
    adversary_override: Option<AdversarySpec>,
    seed: u64,
}

impl Default for ScenarioBuilder {
    fn default() -> Self {
        ScenarioBuilder {
            tasks: Vec::new(),
            trainers: Vec::new(),
            population: None,
            fleet: None,
            crashes: Vec::new(),
            recoveries: Vec::new(),
            control_plane_restore_s: None,
            limits: RunLimits::default(),
            eval: EvalPolicy::default(),
            tier_policy: TierPolicy::default(),
            selection_latency_s: 2.0,
            utilization_sample_interval_s: 60.0,
            server_optimizer: ServerOptimizerKind::FedAvg,
            secagg_override: None,
            dp_override: None,
            robust_override: None,
            adversary_override: None,
            seed: 0,
        }
    }
}

impl ScenarioBuilder {
    /// Adds a task trained with a default surrogate objective (seeded per
    /// task, so tasks are distinct learning problems).
    pub fn task(mut self, task: TaskConfig) -> Self {
        self.tasks.push(task);
        self.trainers.push(None);
        self
    }

    /// Adds a task with an explicit client trainer.
    pub fn task_with_trainer(mut self, task: TaskConfig, trainer: Arc<dyn ClientTrainer>) -> Self {
        self.tasks.push(task);
        self.trainers.push(Some(trainer));
        self
    }

    /// Sets the shared device population (required).
    pub fn population(mut self, population: Population) -> Self {
        self.population = Some(population);
        self
    }

    /// Enables the control-plane fleet path: tasks are placed on persistent
    /// Aggregators and clients routed through Selectors.
    pub fn fleet(mut self, fleet: FleetSpec) -> Self {
        self.fleet = Some(fleet);
        self
    }

    /// Injects an Aggregator crash at the given virtual time (fleet only).
    pub fn crash_at(mut self, time_s: f64, aggregator: AggregatorId) -> Self {
        self.crashes.push(InjectedCrash { time_s, aggregator });
        self
    }

    /// Injects an Aggregator recovery at the given virtual time (fleet
    /// only): the crashed process comes back, heartbeats immediately, and
    /// the reconciliation pass re-places orphaned tasks onto it.
    pub fn recover_at(mut self, time_s: f64, aggregator: AggregatorId) -> Self {
        self.recoveries
            .push(InjectedRecovery { time_s, aggregator });
        self
    }

    /// Interrupts the control-plane service at the first control tick at or
    /// after the given virtual time and resumes it from (latest checkpoint +
    /// event-log suffix).  Restore is deterministic replay, so the rest of
    /// the run — and its [`Report::fingerprint`] — is bit-identical to the
    /// uninterrupted run; scenarios use this to prove checkpoint fidelity
    /// end to end (fleet only).
    pub fn restore_control_plane_at(mut self, time_s: f64) -> Self {
        self.control_plane_restore_s = Some(time_s);
        self
    }

    /// Sets the stop conditions.
    pub fn limits(mut self, limits: RunLimits) -> Self {
        self.limits = limits;
        self
    }

    /// Sets the evaluation policy.
    pub fn eval(mut self, eval: EvalPolicy) -> Self {
        self.eval = eval;
        self
    }

    /// Sets the capability-tier policy used at device check-in.
    pub fn tier_policy(mut self, policy: TierPolicy) -> Self {
        self.tier_policy = policy;
        self
    }

    /// Sets the client-training parallelism (shorthand for the
    /// [`RunLimits::parallelism`] field).
    pub fn parallelism(mut self, parallelism: Parallelism) -> Self {
        self.limits.parallelism = parallelism;
        self
    }

    /// Sets the delay between a client being selected and starting to train.
    pub fn selection_latency_s(mut self, latency_s: f64) -> Self {
        self.selection_latency_s = latency_s;
        self
    }

    /// Sets the utilization sampler interval (direct scenarios).
    pub fn utilization_sample_interval_s(mut self, interval_s: f64) -> Self {
        self.utilization_sample_interval_s = interval_s;
        self
    }

    /// Sets the server optimizer applied to every task's aggregated deltas.
    pub fn server_optimizer(mut self, kind: ServerOptimizerKind) -> Self {
        self.server_optimizer = kind;
        self
    }

    /// Sets the secure-aggregation mode of **every** task of the scenario
    /// (overriding whatever the individual [`TaskConfig`]s carry).  With
    /// [`SecAggMode::AsyncSecAgg`] each task's aggregation strategy is
    /// wrapped in a [`papaya_core::secure::SecureAggregator`]: clients mask
    /// their updates, the Aggregator sums ciphertext, and the TSA releases
    /// one unmask key per closing buffer.  For per-task control use
    /// [`TaskConfig::with_secagg`] instead.
    pub fn secagg(mut self, mode: SecAggMode) -> Self {
        self.secagg_override = Some(mode);
        self
    }

    /// Enables user-level differential privacy on **every** task of the
    /// scenario (overriding whatever the individual [`TaskConfig`]s carry).
    /// Each task's aggregation strategy is wrapped in a
    /// [`papaya_core::dp::DpAggregator`]: updates are L2-clipped to the
    /// configured bound, every release carries seeded Gaussian noise, and a
    /// per-task [`papaya_core::dp::PrivacyAccountant`] composes the
    /// cumulative `(ε, δ)`.  Composes with [`ScenarioBuilder::secagg`] (DP
    /// wraps outermost).  For per-task control use [`TaskConfig::with_dp`]
    /// instead.
    pub fn dp(mut self, config: DpConfig) -> Self {
        self.dp_override = Some(config);
        self
    }

    /// Applies a robust-aggregation defense to every task of the scenario
    /// (overriding whatever the individual [`TaskConfig`]s carry).  Each
    /// task's aggregation stack is wrapped outermost in a
    /// [`papaya_core::robust::RobustAggregator`]: updates are screened
    /// (non-finite values always, L2 norm under a filter) before any inner
    /// layer buffers them, and an engaged estimator (trimmed mean,
    /// coordinate median) replaces the stack's release.  Composes with
    /// [`ScenarioBuilder::secagg`] and [`ScenarioBuilder::dp`].  For
    /// per-task control use [`TaskConfig::with_robust`] instead.
    pub fn robust(mut self, config: RobustConfig) -> Self {
        self.robust_override = Some(config);
        self
    }

    /// Plants a Byzantine cohort in every task of the scenario (overriding
    /// whatever the individual [`TaskConfig`]s carry): the spec's malicious
    /// fraction of clients corrupts its uploads (payload, staleness
    /// metadata, or SecAgg protocol deviation) after local training.  A
    /// simulation knob for attack-vs-defense studies — it never influences
    /// the defenses, which see only the update contents.  For per-task
    /// control use [`TaskConfig::with_adversary`] instead.
    pub fn adversary(mut self, spec: AdversarySpec) -> Self {
        self.adversary_override = Some(spec);
        self
    }

    /// Sets the RNG seed controlling selection, assignment, dropouts, and
    /// training noise.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Validates the composition and produces a runnable [`Scenario`].
    ///
    /// # Panics
    ///
    /// Panics when the composition is invalid: no population or an empty
    /// one, no tasks, more than one task (or injected crashes/recoveries,
    /// or a control-plane restore) without a fleet, a fleet without
    /// Aggregators or Selectors, a heartbeat timeout not exceeding the
    /// control-plane interval, a non-finite restore time, or a task config
    /// the pipeline would not honor (a non-positive/non-finite client
    /// timeout, or a capability-tier restriction without a fleet to
    /// enforce it).
    pub fn build(mut self) -> Scenario {
        // papaya-lint: allow(panic-hygiene) -- documented builder contract: build() panics without a population (see doc comment)
        let population = self.population.expect("a population is required");
        assert!(!population.is_empty(), "population must not be empty");
        assert!(!self.tasks.is_empty(), "at least one task is required");
        if let Some(mode) = self.secagg_override {
            for task in &mut self.tasks {
                task.secagg = mode;
            }
        }
        if let Some(dp) = self.dp_override {
            for task in &mut self.tasks {
                task.dp = Some(dp);
            }
        }
        if let Some(robust) = self.robust_override {
            for task in &mut self.tasks {
                task.robust = Some(robust);
            }
        }
        if let Some(adversary) = self.adversary_override {
            for task in &mut self.tasks {
                task.adversary = Some(adversary);
            }
        }
        for task in &self.tasks {
            validate_task_config(task, self.fleet.is_some());
        }
        validate_run_limits(&self.limits);
        if let Some(fleet) = &self.fleet {
            assert!(fleet.aggregators > 0, "at least one aggregator is required");
            assert!(fleet.selectors > 0, "at least one selector is required");
            assert!(
                fleet.heartbeat_timeout_s > fleet.control_plane_interval_s,
                "heartbeat timeout must exceed the control-plane interval"
            );
        } else {
            assert_eq!(
                self.tasks.len(),
                1,
                "direct (fleet-less) scenarios drive exactly one task; configure a fleet for multi-task runs"
            );
            assert!(
                self.crashes.is_empty(),
                "crash injection requires a fleet of Aggregators"
            );
            assert!(
                self.recoveries.is_empty(),
                "recovery injection requires a fleet of Aggregators"
            );
            assert!(
                self.control_plane_restore_s.is_none(),
                "control-plane restore requires a fleet of Aggregators"
            );
        }
        if let Some(restore_s) = self.control_plane_restore_s {
            assert!(
                restore_s.is_finite() && restore_s >= 0.0,
                "control-plane restore time must be finite and non-negative"
            );
        }
        let seed = self.seed;
        let trainers: Vec<Arc<dyn ClientTrainer>> = self
            .trainers
            .into_iter()
            .enumerate()
            .map(|(task_id, trainer)| {
                trainer.unwrap_or_else(|| {
                    // Salt with task_id + 1 so task 0's stream is decorrelated
                    // from the driver RNG (and the population generator) too.
                    Arc::new(SurrogateObjective::new(
                        &population,
                        SurrogateConfig::default(),
                        seed ^ (task_id as u64 + 1).wrapping_mul(0x9E3779B97F4A7C15),
                    )) as Arc<dyn ClientTrainer>
                })
            })
            .collect();
        Scenario {
            tasks: self.tasks,
            trainers,
            population,
            fleet: self.fleet,
            crashes: self.crashes,
            recoveries: self.recoveries,
            control_plane_restore_s: self.control_plane_restore_s,
            limits: self.limits,
            eval: self.eval,
            tier_policy: self.tier_policy,
            selection_latency_s: self.selection_latency_s,
            utilization_sample_interval_s: self.utilization_sample_interval_s,
            server_optimizer: self.server_optimizer,
            seed,
        }
    }
}

/// The single choke point where a scenario acknowledges every `TaskConfig`
/// field it honors.  The destructuring is exhaustive on purpose — adding a
/// field to `TaskConfig` without deciding whether (and where) scenarios
/// honor it becomes a compile error here, so a knob can never again sit
/// silently ignored the way `SecAggMode` once did.
///
/// # Panics
///
/// Panics on a config the pipeline would *not* honor: a non-positive or
/// non-finite client timeout, or a capability-tier restriction on a direct
/// (fleet-less) scenario, whose uniform selection has no Selector to
/// enforce tiers.
fn validate_task_config(task: &TaskConfig, has_fleet: bool) {
    let TaskConfig {
        name: _,               // report labels
        concurrency: _,        // demand computation (positivity checked at construction)
        aggregation_goal: _,   // strategy goal (positivity checked at construction)
        mode,                  // aggregator::for_task builds the strategy
        weight_by_examples: _, // strategy weighting
        client_timeout_s,      // timeout aborts scheduled at selection
        secagg,                // SecureAggregator wrapping in TaskRuntime
        dp,                    // DpAggregator wrapping in TaskRuntime
        robust,                // RobustAggregator wrapping in TaskRuntime
        adversary,             // Byzantine injection in TaskRuntime::offer_update
        model_size_bytes: _,   // communication-cost accounting
        min_capability_tier,   // Selector routing (fleet scenarios only)
    } = task;
    // Exhaustive matches: a new mode or secagg variant must be wired up (or
    // explicitly rejected) before it compiles.
    match mode {
        TrainingMode::Sync { .. }
        | TrainingMode::Async { .. }
        | TrainingMode::TimedHybrid { .. } => {}
    }
    match secagg {
        SecAggMode::Disabled | SecAggMode::AsyncSecAgg | SecAggMode::AsyncSecAggPerUpdate => {}
    }
    if let Some(dp) = dp {
        // Every DP knob in range (positive finite clip bound, non-negative
        // noise, sampling rate in (0, 1], delta in (0, 1), a budget only
        // with noise) — rejected here rather than mid-run.
        dp.validate();
    }
    if let Some(robust) = robust {
        // Defense knobs in range (positive norm bound, trim fraction in
        // [0, 0.5)) — rejected here rather than mid-run.
        robust.validate();
    }
    if let Some(adversary) = adversary {
        // Malicious fraction in [0, 1] and every behavior knob finite.
        adversary.validate();
    }
    assert!(
        client_timeout_s.is_finite() && *client_timeout_s > 0.0,
        "task {:?}: client timeout must be positive and finite",
        task.name
    );
    assert!(
        *min_capability_tier == 0 || has_fleet,
        "task {:?}: min_capability_tier is enforced by Selector routing and \
         requires a fleet; direct scenarios select devices uniformly and \
         would silently ignore it",
        task.name
    );
}

/// The choke point where a scenario acknowledges every [`RunLimits`] field
/// it honors — the stop-condition sibling of [`validate_task_config`].  The
/// destructuring is exhaustive on purpose: adding a limit knob without
/// deciding how runs honor it becomes a compile error here (and a lint
/// finding), never a silently ignored setting.
///
/// # Panics
///
/// Panics on limits the run loops would not honor: a non-positive or
/// non-finite virtual-time budget, a zero client-update budget, or a
/// non-finite target loss.
fn validate_run_limits(limits: &RunLimits) {
    let RunLimits {
        max_virtual_time_s,      // hard stop in both run loops
        max_client_updates,      // checked on every (Task)ClientFinished
        target_loss,             // checked on every Evaluate(Task)
        parallelism: _,          // executor pool size; any value is honored
        trace_budget: _,         // validated at construction by TraceBudget::bounded
        sampling_shard_capacity, // must be able to hold at least one id
    } = limits;
    assert!(
        max_virtual_time_s.is_finite() && *max_virtual_time_s > 0.0,
        "max_virtual_time_s must be positive and finite"
    );
    assert!(
        *sampling_shard_capacity > 0,
        "sampling_shard_capacity of 0 cannot hold any device ids"
    );
    if let Some(max) = max_client_updates {
        assert!(
            *max > 0,
            "max_client_updates of 0 would stop no run; use a positive budget"
        );
    }
    if let Some(target) = target_loss {
        assert!(target.is_finite(), "target_loss must be finite");
    }
}

impl Scenario {
    /// Starts composing a scenario.
    pub fn builder() -> ScenarioBuilder {
        ScenarioBuilder::default()
    }

    /// The composed tasks.
    pub fn tasks(&self) -> &[TaskConfig] {
        &self.tasks
    }

    /// Runs the scenario to completion and returns the unified report.
    ///
    /// With a non-sequential [`RunLimits::parallelism`] a worker pool is
    /// created for the duration of the run and client local training is
    /// executed speculatively off the event-loop thread; the report is
    /// bit-identical either way.
    pub fn run(&self) -> Report {
        let executor = Executor::from_parallelism(self.limits.parallelism);
        match &self.fleet {
            None => DirectState::new(self, executor).run(),
            Some(fleet) => FleetState::new(self, fleet, executor).run(),
        }
    }

    /// The fleet's initial placement as the control plane would report it at
    /// time zero: per-Aggregator liveness and load, pending tasks, and the
    /// assignment-map sequence.  Returns `None` for direct (fleet-less)
    /// scenarios, which have no control plane.
    pub fn fleet_status(&self) -> Option<FleetStatus> {
        let fleet = self.fleet.as_ref()?;
        Some(initial_control_plane(self, fleet).fleet_status())
    }
}

/// Draws `sample` distinct evaluation client ids without replacement.
pub(crate) fn sample_eval_ids(
    rng: &mut StdRng,
    population_len: usize,
    sample: usize,
) -> Vec<usize> {
    let sample = sample.min(population_len).max(1);
    let mut chosen = BTreeSet::new();
    let mut eval_ids = Vec::with_capacity(sample);
    while eval_ids.len() < sample {
        let id = rng.gen_range(0..population_len);
        if chosen.insert(id) {
            eval_ids.push(id);
        }
    }
    eval_ids
}

fn task_report(
    task_id: usize,
    name: String,
    reassignments: u64,
    runtime: TaskRuntime,
    virtual_seconds: f64,
) -> TaskReport {
    let (metrics, final_params, final_version, final_loss, hours_to_target) = runtime.into_parts();
    let initial_loss = metrics
        .loss_curve
        .first()
        .map(|&(_, loss)| loss)
        .unwrap_or(f64::INFINITY);
    TaskReport {
        task_id,
        name,
        initial_loss,
        final_loss,
        hours_to_target,
        final_version,
        final_params,
        reassignments,
        lost_buffered_updates: metrics.lost_buffered_updates,
        summary: metrics.summarize(virtual_seconds),
        metrics,
    }
}

fn roll_up(virtual_hours: f64, tasks: &[TaskReport], stats: ControlPlaneStats) -> FleetSummary {
    let summaries: Vec<TaskSummary> = tasks.iter().map(TaskReport::to_task_summary).collect();
    let collectors: Vec<&MetricsCollector> = tasks.iter().map(|t| &t.metrics).collect();
    FleetSummary::roll_up(virtual_hours, &summaries, &collectors, stats)
}

// ---------------------------------------------------------------------------
// Direct path: one task driven straight off the event queue.
// ---------------------------------------------------------------------------

struct DirectState<'a> {
    scenario: &'a Scenario,
    rng: StdRng,
    queue: EventQueue,
    runtime: TaskRuntime,
    pool: SamplingPool,
    next_participation_id: u64,
    /// Latest aggregation deadline an `AggregatorDeadline` event has been
    /// scheduled for (deadline strategies only; deadlines only move
    /// forward, so one value suffices).
    scheduled_deadline: Option<f64>,
    now: SimTime,
}

impl<'a> DirectState<'a> {
    fn new(scenario: &'a Scenario, executor: Option<Arc<Executor>>) -> Self {
        let mut rng = StdRng::seed_from_u64(scenario.seed);
        // Fixed evaluation sample.
        let eval_ids = sample_eval_ids(
            &mut rng,
            scenario.population.len(),
            scenario.eval.sample_size,
        );
        let mut runtime = TaskRuntime::new(
            scenario.tasks[0].clone(),
            scenario.server_optimizer,
            Arc::clone(&scenario.trainers[0]),
            eval_ids,
            scenario.seed,
            scenario.limits.target_loss,
        );
        runtime.set_executor(executor);
        runtime.set_trace_budget(scenario.limits.trace_budget);
        DirectState {
            scenario,
            rng,
            queue: EventQueue::new(),
            runtime,
            pool: SamplingPool::with_shard_capacity(
                scenario.population.len(),
                scenario.limits.sampling_shard_capacity,
            ),
            next_participation_id: 0,
            scheduled_deadline: None,
            now: 0.0,
        }
    }

    /// Schedules an exact readiness check when the aggregator reports a new
    /// deadline (a buffer opened or reopened).  No-op for count-based
    /// strategies, which never report one.
    fn schedule_deadline_check(&mut self) {
        if let Some(deadline) = self.runtime.next_deadline_s() {
            if self.scheduled_deadline != Some(deadline) {
                self.scheduled_deadline = Some(deadline);
                self.queue.schedule(
                    deadline.max(self.now),
                    EventKind::AggregatorDeadline { task: 0 },
                );
            }
        }
    }

    fn run(mut self) -> Report {
        self.fill_demand();
        self.queue.schedule(0.0, EventKind::Evaluate);
        self.queue.schedule(0.0, EventKind::SampleUtilization);

        let limits = self.scenario.limits;
        let mut stop_reason = StopReason::MaxVirtualTime;
        let mut events_processed = 0u64;
        while let Some(event) = self.queue.pop() {
            if event.time > limits.max_virtual_time_s {
                stop_reason = StopReason::MaxVirtualTime;
                self.now = limits.max_virtual_time_s;
                break;
            }
            self.now = event.time;
            events_processed += 1;
            match event.kind {
                EventKind::ClientFinished {
                    client_id,
                    participation_id,
                } => {
                    self.handle_client_finished(client_id, participation_id);
                    if let Some(max) = limits.max_client_updates {
                        if self.runtime.metrics().comm_trips >= max {
                            stop_reason = StopReason::MaxClientUpdates;
                            break;
                        }
                    }
                }
                EventKind::ClientFailed {
                    client_id: _,
                    participation_id,
                } => {
                    if let Some(freed_client) = self.runtime.client_failed(participation_id) {
                        self.pool.release(freed_client);
                        self.fill_demand();
                    }
                }
                EventKind::Evaluate => {
                    self.runtime.evaluate(self.now);
                    if self.runtime.target_reached() {
                        stop_reason = StopReason::TargetLossReached;
                        break;
                    }
                    self.queue.schedule(
                        self.now + self.scenario.eval.interval_s,
                        EventKind::Evaluate,
                    );
                }
                EventKind::SampleUtilization => {
                    self.runtime.record_utilization(self.now);
                    self.queue.schedule(
                        self.now + self.scenario.utilization_sample_interval_s,
                        EventKind::SampleUtilization,
                    );
                }
                EventKind::AggregatorDeadline { task: _ } => {
                    // Exact timed release; a stale check (the buffer closed
                    // or moved since scheduling) polls as a no-op.
                    if let Some(outcome) = self.runtime.poll(self.now) {
                        if outcome.tsa_key_released {
                            self.queue
                                .schedule(self.now, EventKind::TsaKeyRelease { task: 0 });
                        }
                        if outcome.dp_released {
                            self.queue
                                .schedule(self.now, EventKind::DpRelease { task: 0 });
                        }
                        if outcome.robust_released {
                            self.queue
                                .schedule(self.now, EventKind::RobustRelease { task: 0 });
                        }
                        for freed in &outcome.freed {
                            self.pool.release(freed.client_id);
                        }
                        self.fill_demand();
                    }
                }
                EventKind::TsaKeyRelease { task: _ } => {
                    // The TSA unmasked the buffer that just closed; refresh
                    // the task's secure-aggregation metrics from the
                    // aggregator's telemetry.
                    self.runtime.sync_secure_telemetry();
                }
                EventKind::DpRelease { task: _ } => {
                    // A noised aggregate was published and composed into the
                    // cumulative ε; refresh the DP metrics and enforce the
                    // privacy budget.
                    self.runtime.sync_dp_telemetry();
                    if self.runtime.privacy_budget_exhausted() {
                        stop_reason = StopReason::PrivacyBudgetExhausted;
                        break;
                    }
                }
                EventKind::RobustRelease { task: _ } => {
                    // A defense-mediated release went out; refresh the
                    // robustness metrics from the aggregator's telemetry.
                    self.runtime.sync_robust_telemetry();
                }
                // Fleet-plane events, listed explicitly so a new
                // `EventKind` variant is a compile error in this match.
                EventKind::TaskClientFinished { .. }
                | EventKind::TaskClientFailed { .. }
                | EventKind::EvaluateTask { .. }
                | EventKind::ControlPlaneTick
                | EventKind::RefreshSelectors
                | EventKind::AggregatorCrash { .. }
                | EventKind::AggregatorRecover { .. }
                | EventKind::ReconcileTick => {
                    unreachable!("direct scenarios schedule no fleet events")
                }
            }
            self.schedule_deadline_check();
        }

        // Final evaluation so `final_loss` reflects the last model.
        self.runtime.evaluate(self.now);

        let virtual_hours = self.now / 3600.0;
        let name = self.runtime.config().name.clone();
        let report = task_report(0, name, 0, self.runtime, self.now);
        let fleet = roll_up(
            virtual_hours,
            std::slice::from_ref(&report),
            ControlPlaneStats::default(),
        );
        Report {
            stop_reason,
            virtual_hours,
            events_processed,
            tasks: vec![report],
            fleet,
        }
    }

    fn fill_demand(&mut self) {
        let demand = self.runtime.demand();
        for _ in 0..demand {
            if !self.select_one_client() {
                break; // population exhausted
            }
        }
        self.runtime.record_utilization(self.now);
    }

    /// Selects one idle device uniformly at random; returns false when every
    /// device is already participating.
    fn select_one_client(&mut self) -> bool {
        let client_id = match self.pool.acquire_random(&mut self.rng) {
            Some(id) => id,
            None => return false,
        };
        let device = self.scenario.population.device(client_id);
        let participation_id = self.next_participation_id;
        self.next_participation_id += 1;

        let timeout = self.runtime.config().client_timeout_s;
        let start = self.now + self.scenario.selection_latency_s;
        let drops_out = self.rng.gen::<f64>() < device.dropout_prob;
        let exceeds_timeout = device.exceeds_timeout(timeout);
        let execution_time = device.clamped_execution_time(timeout);

        self.runtime
            .begin_participation(participation_id, client_id, execution_time);

        if drops_out {
            // The client fails partway through its (clamped) execution.
            let fraction: f64 = self.rng.gen_range(0.05..0.95);
            self.queue.schedule(
                start + fraction * execution_time,
                EventKind::ClientFailed {
                    client_id,
                    participation_id,
                },
            );
        } else if exceeds_timeout {
            // The client is aborted at the timeout.
            self.queue.schedule(
                start + timeout,
                EventKind::ClientFailed {
                    client_id,
                    participation_id,
                },
            );
        } else {
            self.queue.schedule(
                start + execution_time,
                EventKind::ClientFinished {
                    client_id,
                    participation_id,
                },
            );
            // This participation will reach its finish event: start its
            // local training on the worker pool now (no-op sequentially).
            self.runtime.prefetch_training(participation_id);
        }
        true
    }

    fn handle_client_finished(&mut self, client_id: usize, participation_id: u64) {
        let outcome = match self.runtime.offer_update(participation_id, self.now) {
            Some(outcome) => outcome,
            None => return, // aborted earlier (round ended or staleness abort)
        };
        if outcome.tsa_key_released {
            self.queue
                .schedule(self.now, EventKind::TsaKeyRelease { task: 0 });
        }
        if outcome.dp_released {
            self.queue
                .schedule(self.now, EventKind::DpRelease { task: 0 });
        }
        if outcome.robust_released {
            self.queue
                .schedule(self.now, EventKind::RobustRelease { task: 0 });
        }
        self.pool.release(client_id);
        for freed in &outcome.freed {
            self.pool.release(freed.client_id);
        }
        if outcome.round_ended {
            self.runtime.record_utilization(self.now);
        }
        self.fill_demand();
    }
}

// ---------------------------------------------------------------------------
// Fleet path: tasks on persistent Aggregators behind the control plane.
// ---------------------------------------------------------------------------

/// The control plane as of t=0: Coordinator created from the scenario
/// seed, Aggregators registered, tasks submitted in id order.  Shared by
/// [`FleetState::new`] and [`Scenario::fleet_status`] so the preview and
/// the run agree on initial placement.
fn initial_control_plane(scenario: &Scenario, fleet: &FleetSpec) -> ControlPlaneService {
    let mut service = ControlPlaneService::new(fleet.heartbeat_timeout_s, scenario.seed ^ 0xC0FFEE);
    for id in 0..fleet.aggregators {
        service.register_aggregator(id, 0.0);
    }
    for (task_id, task) in scenario.tasks.iter().enumerate() {
        service.submit_task(TaskSpec::from_task_config(task_id, task));
    }
    service
}

struct FleetState<'a> {
    scenario: &'a Scenario,
    fleet: &'a FleetSpec,
    rng: StdRng,
    queue: EventQueue,
    runtimes: Vec<TaskRuntime>,
    service: ControlPlaneService,
    selectors: Vec<Selector>,
    selector_cursor: usize,
    crashed: BTreeSet<AggregatorId>,
    pool: SamplingPool,
    tiers: Vec<u8>,
    /// Aggregator each in-flight participation will upload to (the route
    /// the client received at selection time).
    upload_route: BTreeMap<u64, AggregatorId>,
    next_participation_id: u64,
    reassignments: Vec<u64>,
    /// Latest aggregation deadline an `AggregatorDeadline` event has been
    /// scheduled for, per task (deadline strategies only).
    scheduled_deadlines: Vec<Option<f64>>,
    stats: ControlPlaneStats,
    /// Whether a [`EventKind::ReconcileTick`] is already queued (the pass
    /// is scheduled at most once per divergence episode).
    reconcile_scheduled: bool,
    /// Whether the injected control-plane restore already happened.
    restored: bool,
    now: SimTime,
}

impl<'a> FleetState<'a> {
    fn new(scenario: &'a Scenario, fleet: &'a FleetSpec, executor: Option<Arc<Executor>>) -> Self {
        let mut rng = StdRng::seed_from_u64(scenario.seed);
        let service = initial_control_plane(scenario, fleet);
        let mut runtimes = Vec::with_capacity(scenario.tasks.len());
        for (task_id, task) in scenario.tasks.iter().enumerate() {
            let eval_ids = sample_eval_ids(
                &mut rng,
                scenario.population.len(),
                scenario.eval.sample_size,
            );
            let mut runtime = TaskRuntime::new(
                task.clone(),
                scenario.server_optimizer,
                Arc::clone(&scenario.trainers[task_id]),
                eval_ids,
                scenario.seed ^ ((task_id as u64 + 1) << 32),
                scenario.limits.target_loss,
            );
            // All runtimes share one pool; participation ids are unique
            // across tasks, so jobs never collide.
            runtime.set_executor(executor.clone());
            runtime.set_trace_budget(scenario.limits.trace_budget);
            runtimes.push(runtime);
        }
        let mut selectors = vec![Selector::new(); fleet.selectors];
        for selector in &mut selectors {
            selector.refresh(service.coordinator());
        }
        let tiers = scenario
            .population
            .iter()
            .map(|device| scenario.tier_policy.tier(&device))
            .collect();
        FleetState {
            scenario,
            fleet,
            rng,
            queue: EventQueue::new(),
            runtimes,
            service,
            selectors,
            selector_cursor: 0,
            crashed: BTreeSet::new(),
            pool: SamplingPool::with_shard_capacity(
                scenario.population.len(),
                scenario.limits.sampling_shard_capacity,
            ),
            tiers,
            upload_route: BTreeMap::new(),
            next_participation_id: 0,
            reassignments: vec![0; scenario.tasks.len()],
            scheduled_deadlines: vec![None; scenario.tasks.len()],
            stats: ControlPlaneStats::default(),
            reconcile_scheduled: false,
            restored: false,
            now: 0.0,
        }
    }

    fn total_comm_trips(&self) -> u64 {
        self.runtimes.iter().map(|r| r.metrics().comm_trips).sum()
    }

    /// Schedules exact readiness checks for tasks whose aggregator reports
    /// a new deadline (a buffer opened or reopened).  No-op for count-based
    /// strategies, which never report one.
    fn schedule_deadline_checks(&mut self) {
        for task in 0..self.runtimes.len() {
            if let Some(deadline) = self.runtimes[task].next_deadline_s() {
                if self.scheduled_deadlines[task] != Some(deadline) {
                    self.scheduled_deadlines[task] = Some(deadline);
                    self.queue.schedule(
                        deadline.max(self.now),
                        EventKind::AggregatorDeadline { task },
                    );
                }
            }
        }
    }

    fn run(mut self) -> Report {
        self.queue.schedule(0.0, EventKind::ControlPlaneTick);
        self.queue.schedule(
            self.fleet.selector_refresh_interval_s,
            EventKind::RefreshSelectors,
        );
        for task in 0..self.runtimes.len() {
            self.queue.schedule(0.0, EventKind::EvaluateTask { task });
        }
        for crash in &self.scenario.crashes {
            self.queue.schedule(
                crash.time_s,
                EventKind::AggregatorCrash {
                    aggregator: crash.aggregator,
                },
            );
        }
        for recovery in &self.scenario.recoveries {
            self.queue.schedule(
                recovery.time_s,
                EventKind::AggregatorRecover {
                    aggregator: recovery.aggregator,
                },
            );
        }

        let limits = self.scenario.limits;
        let mut stop_reason = StopReason::MaxVirtualTime;
        let mut events_processed = 0u64;
        while let Some(event) = self.queue.pop() {
            if event.time > limits.max_virtual_time_s {
                self.now = limits.max_virtual_time_s;
                break;
            }
            self.now = event.time;
            events_processed += 1;
            match event.kind {
                EventKind::ControlPlaneTick => self.control_plane_tick(),
                EventKind::RefreshSelectors => self.refresh_selectors(),
                EventKind::AggregatorCrash { aggregator } => {
                    if self.crashed.insert(aggregator) {
                        self.stats.aggregator_failures += 1;
                    }
                }
                EventKind::AggregatorRecover { aggregator } => self.handle_recovery(aggregator),
                EventKind::ReconcileTick => self.reconcile_tick(),
                EventKind::TaskClientFinished {
                    task,
                    client_id,
                    participation_id,
                } => {
                    self.handle_client_finished(task, client_id, participation_id);
                    if let Some(max) = limits.max_client_updates {
                        if self.total_comm_trips() >= max {
                            stop_reason = StopReason::MaxClientUpdates;
                            break;
                        }
                    }
                }
                EventKind::TaskClientFailed {
                    task,
                    client_id: _,
                    participation_id,
                } => {
                    self.upload_route.remove(&participation_id);
                    if let Some(freed) = self.runtimes[task].client_failed(participation_id) {
                        self.pool.release(freed);
                    }
                }
                EventKind::AggregatorDeadline { task } => {
                    // Exact timed release; a stale check (the buffer closed
                    // or moved since scheduling) polls as a no-op.
                    if let Some(outcome) = self.runtimes[task].poll(self.now) {
                        if outcome.tsa_key_released {
                            self.queue
                                .schedule(self.now, EventKind::TsaKeyRelease { task });
                        }
                        if outcome.dp_released {
                            self.queue.schedule(self.now, EventKind::DpRelease { task });
                        }
                        if outcome.robust_released {
                            self.queue
                                .schedule(self.now, EventKind::RobustRelease { task });
                        }
                        for freed in &outcome.freed {
                            self.upload_route.remove(&freed.participation_id);
                            self.pool.release(freed.client_id);
                        }
                    }
                }
                EventKind::TsaKeyRelease { task } => {
                    // The TSA unmasked the buffer that just closed; refresh
                    // the task's secure-aggregation metrics.
                    self.runtimes[task].sync_secure_telemetry();
                }
                EventKind::DpRelease { task } => {
                    // A noised aggregate was published and composed into
                    // the cumulative ε; refresh the task's DP metrics and
                    // enforce the budget — one task overspending its ε
                    // stops the whole scenario (the operator must re-budget
                    // before any further release is defensible).
                    self.runtimes[task].sync_dp_telemetry();
                    if self.runtimes[task].privacy_budget_exhausted() {
                        stop_reason = StopReason::PrivacyBudgetExhausted;
                        break;
                    }
                }
                EventKind::RobustRelease { task } => {
                    // A defense-mediated release went out; refresh the
                    // task's robustness metrics.
                    self.runtimes[task].sync_robust_telemetry();
                }
                EventKind::EvaluateTask { task } => {
                    self.runtimes[task].evaluate(self.now);
                    if limits.target_loss.is_some()
                        && self.runtimes.iter().all(|r| r.target_reached())
                    {
                        stop_reason = StopReason::TargetLossReached;
                        break;
                    }
                    self.queue.schedule(
                        self.now + self.scenario.eval.interval_s,
                        EventKind::EvaluateTask { task },
                    );
                }
                // Direct-path events, listed explicitly so a new
                // `EventKind` variant is a compile error in this match.
                EventKind::ClientFinished { .. }
                | EventKind::ClientFailed { .. }
                | EventKind::Evaluate
                | EventKind::SampleUtilization => {
                    unreachable!("fleet scenarios schedule no direct-path events")
                }
            }
            self.schedule_deadline_checks();
        }

        // Final evaluation so every task's final loss reflects its last model.
        for runtime in &mut self.runtimes {
            runtime.evaluate(self.now);
        }
        self.stats.final_map_sequence = self.service.coordinator().sequence();
        let counters = self.service.counters();
        self.stats.heartbeats = counters.heartbeats;
        self.stats.tasks_placed = counters.tasks_placed;
        self.stats.tasks_orphaned = counters.tasks_orphaned;
        self.stats.tasks_reconciled = counters.tasks_reconciled;
        self.stats.pending_task_submissions = counters.pending_task_submissions;
        self.stats.unknown_heartbeat_registrations = counters.unknown_heartbeat_registrations;
        self.stats.control_log_events = self.service.log().len();
        self.stats.checkpoints_taken = self.service.checkpoints_taken();
        self.stats.checkpoint_age_events = self.service.checkpoint_age_events();

        let virtual_hours = self.now / 3600.0;
        let mut reports = Vec::with_capacity(self.runtimes.len());
        for (task_id, runtime) in self.runtimes.into_iter().enumerate() {
            let name = runtime.config().name.clone();
            reports.push(task_report(
                task_id,
                name,
                self.reassignments[task_id],
                runtime,
                self.now,
            ));
        }
        let fleet = roll_up(virtual_hours, &reports, self.stats);
        Report {
            stop_reason,
            virtual_hours,
            events_processed,
            tasks: reports,
            fleet,
        }
    }

    /// One control-plane sweep: heartbeats, failure detection and task
    /// reassignment, demand pooling, and client assignment.
    fn control_plane_tick(&mut self) {
        self.maybe_restore_control_plane();

        // Live Aggregators heartbeat; crashed ones stay silent.
        for id in 0..self.fleet.aggregators {
            if !self.crashed.contains(&id) {
                self.service.heartbeat(id, self.now);
            }
        }

        // Failure detection: tasks moved to a surviving Aggregator lose
        // their buffered updates.  Tasks orphaned by total loss lose them
        // too (the buffers died with the Aggregator); their re-placement
        // waits for the reconcile pass triggered by the first recovery.
        let sweep = self.service.detect_failures(self.now);
        for task in sweep.reassigned {
            self.runtimes[task].drop_buffered_updates();
            self.reassignments[task] += 1;
            self.stats.task_reassignments += 1;
        }
        for task in sweep.orphaned {
            self.runtimes[task].drop_buffered_updates();
        }

        // Demand pooling: every runtime reports its current client demand.
        for (task_id, runtime) in self.runtimes.iter().enumerate() {
            self.service.report_demand(task_id, runtime.demand());
        }

        // Client assignment: idle devices check in and are assigned to
        // eligible tasks until demand is met (or no check-in succeeds).
        let total_demand: usize = (0..self.runtimes.len())
            .map(|task| self.service.coordinator().effective_demand(task))
            .sum();
        let mut assigned = 0;
        let mut turned_away = Vec::new();
        let max_checkins = 4 * total_demand + 8;
        for _ in 0..max_checkins {
            if assigned >= total_demand {
                break;
            }
            let client_id = match self.pool.acquire_random(&mut self.rng) {
                Some(id) => id,
                None => break, // every device is already participating
            };
            match self.service.assign_client(self.tiers[client_id]) {
                Some((task, aggregator)) => {
                    if self.route_and_start(task, aggregator, client_id) {
                        assigned += 1;
                    } else {
                        turned_away.push(client_id);
                    }
                }
                None => turned_away.push(client_id), // no eligible task now
            }
        }
        for client_id in turned_away {
            self.pool.release(client_id);
        }

        for runtime in &mut self.runtimes {
            runtime.record_utilization(self.now);
        }
        self.maybe_schedule_reconcile();
        self.queue.schedule(
            self.now + self.fleet.control_plane_interval_s,
            EventKind::ControlPlaneTick,
        );
    }

    /// An injected Aggregator recovery: the process comes back, heartbeats
    /// immediately (register-or-refresh), and any orphaned or pending tasks
    /// are re-placed by the reconcile pass the heartbeat makes possible.
    fn handle_recovery(&mut self, aggregator: AggregatorId) {
        if self.crashed.remove(&aggregator) {
            self.stats.aggregator_recoveries += 1;
            self.service.heartbeat(aggregator, self.now);
            self.maybe_schedule_reconcile();
        }
    }

    /// A reconciliation pass: diff desired placement (every task routed to a
    /// healthy Aggregator) against actual routes and correct divergence.
    /// Re-placing an orphan counts as a reassignment; first placement of a
    /// pending task does not.
    fn reconcile_tick(&mut self) {
        self.reconcile_scheduled = false;
        let corrections = self.service.reconcile(self.now);
        for correction in corrections {
            if correction.was_placed {
                self.reassignments[correction.task] += 1;
                self.stats.task_reassignments += 1;
            }
        }
    }

    /// Schedules a reconcile pass at the current instant iff one would do
    /// work and none is already queued.  Scenarios whose placement never
    /// diverges therefore process no extra events — a property the pinned
    /// historical fingerprints depend on.
    fn maybe_schedule_reconcile(&mut self) {
        if !self.reconcile_scheduled && self.service.needs_reconciliation() {
            self.reconcile_scheduled = true;
            self.queue.schedule(self.now, EventKind::ReconcileTick);
        }
    }

    /// If the scenario asks for a mid-run control-plane restore, throw away
    /// the live service state at the first control tick past the requested
    /// time and rebuild it from (checkpoint + log suffix).  Deliberately
    /// in-band (not an event): a restore must not change the event count,
    /// because its whole point is proving the run is bit-identical with and
    /// without it.
    fn maybe_restore_control_plane(&mut self) {
        if let Some(restore_s) = self.scenario.control_plane_restore_s {
            if !self.restored && self.now >= restore_s {
                self.restored = true;
                self.service.restore_from_checkpoint();
                self.stats.coordinator_restores += 1;
            }
        }
    }

    /// Routes an assigned client through the next Selector and, if routing
    /// succeeds, starts the participation.  Returns false when the client
    /// must retry later (stale Selector map or dead Aggregator).
    fn route_and_start(&mut self, task: usize, aggregator: AggregatorId, client_id: usize) -> bool {
        let selector_index = self.selector_cursor % self.selectors.len();
        self.selector_cursor += 1;
        let selector = &self.selectors[selector_index];

        // A Selector whose map sequence is behind the Coordinator's refuses
        // to route and asks the client to retry while it refreshes.
        if selector.is_stale(self.service.coordinator()) {
            self.stats.stale_route_refusals += 1;
            return false;
        }
        match selector.route(task) {
            RouteOutcome::StaleMap => {
                self.stats.stale_route_refusals += 1;
                return false;
            }
            RouteOutcome::Routed(routed) => {
                // The connection to a dead Aggregator fails outright; the
                // client retries at a later check-in.
                if self.crashed.contains(&routed) || routed != aggregator {
                    return false;
                }
            }
        }

        let device = self.scenario.population.device(client_id);
        let participation_id = self.next_participation_id;
        self.next_participation_id += 1;

        let timeout = self.runtimes[task].config().client_timeout_s;
        let start = self.now + self.scenario.selection_latency_s;
        let drops_out = self.rng.gen::<f64>() < device.dropout_prob;
        let exceeds_timeout = device.exceeds_timeout(timeout);
        let execution_time = device.clamped_execution_time(timeout);

        self.runtimes[task].begin_participation(participation_id, client_id, execution_time);
        self.upload_route.insert(participation_id, aggregator);

        if drops_out {
            let fraction: f64 = self.rng.gen_range(0.05..0.95);
            self.queue.schedule(
                start + fraction * execution_time,
                EventKind::TaskClientFailed {
                    task,
                    client_id,
                    participation_id,
                },
            );
        } else if exceeds_timeout {
            self.queue.schedule(
                start + timeout,
                EventKind::TaskClientFailed {
                    task,
                    client_id,
                    participation_id,
                },
            );
        } else {
            self.queue.schedule(
                start + execution_time,
                EventKind::TaskClientFinished {
                    task,
                    client_id,
                    participation_id,
                },
            );
            // This participation will reach its finish event: start its
            // local training on the worker pool now (no-op sequentially).
            self.runtimes[task].prefetch_training(participation_id);
        }
        true
    }

    fn refresh_selectors(&mut self) {
        for selector in &mut self.selectors {
            if selector.is_stale(self.service.coordinator()) {
                selector.refresh(self.service.coordinator());
            }
        }
        self.queue.schedule(
            self.now + self.fleet.selector_refresh_interval_s,
            EventKind::RefreshSelectors,
        );
    }

    fn handle_client_finished(&mut self, task: usize, client_id: usize, participation_id: u64) {
        let destination = self.upload_route.remove(&participation_id);
        // An upload addressed to a dead Aggregator is lost in transit; the
        // participation failed from the task's point of view.
        if destination
            .map(|agg| self.crashed.contains(&agg))
            .unwrap_or(false)
        {
            self.stats.lost_in_transit_updates += 1;
            if let Some(freed) = self.runtimes[task].client_failed(participation_id) {
                self.pool.release(freed);
            }
            return;
        }
        let outcome = match self.runtimes[task].offer_update(participation_id, self.now) {
            Some(outcome) => outcome,
            None => return, // aborted earlier (round end, staleness, failover)
        };
        if outcome.tsa_key_released {
            self.queue
                .schedule(self.now, EventKind::TsaKeyRelease { task });
        }
        if outcome.dp_released {
            self.queue.schedule(self.now, EventKind::DpRelease { task });
        }
        if outcome.robust_released {
            self.queue
                .schedule(self.now, EventKind::RobustRelease { task });
        }
        self.pool.release(client_id);
        for freed in &outcome.freed {
            self.upload_route.remove(&freed.participation_id);
            self.pool.release(freed.client_id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use papaya_data::population::PopulationConfig;

    fn population(n: usize) -> Population {
        Population::generate(&PopulationConfig::default().with_size(n), 17)
    }

    #[test]
    fn direct_scenario_trains_one_task() {
        let report = Scenario::builder()
            .population(population(600))
            .task(TaskConfig::async_task("t", 32, 8))
            .limits(RunLimits::default().with_max_virtual_time_hours(1.0))
            .eval(EvalPolicy::default().with_interval_s(600.0))
            .seed(3)
            .build()
            .run();
        assert_eq!(report.stop_reason, StopReason::MaxVirtualTime);
        let task = report.single();
        assert!(task.server_updates() > 0);
        assert!(task.final_loss < task.initial_loss);
        // The fleet roll-up covers the single task with zeroed control-plane
        // counters.
        assert_eq!(report.fleet.tasks, 1);
        assert_eq!(report.fleet.total_comm_trips, task.comm_trips());
        assert_eq!(report.fleet.control_plane, ControlPlaneStats::default());
    }

    #[test]
    fn fleet_scenario_trains_many_tasks() {
        let report = Scenario::builder()
            .population(population(1200))
            .task(TaskConfig::async_task("a", 48, 12))
            .task(TaskConfig::sync_task("s", 30, 0.3))
            .fleet(FleetSpec::new(2, 2))
            .limits(RunLimits::default().with_max_virtual_time_hours(1.0))
            .eval(EvalPolicy::default().with_interval_s(600.0))
            .seed(5)
            .build()
            .run();
        assert_eq!(report.tasks.len(), 2);
        for task in &report.tasks {
            assert!(task.comm_trips() > 0, "task {} got no updates", task.name);
            assert!(task.final_loss < task.initial_loss);
        }
        assert_eq!(
            report.fleet.total_comm_trips,
            report.tasks.iter().map(|t| t.comm_trips()).sum::<u64>()
        );
    }

    #[test]
    fn scenario_matches_for_same_seed() {
        let run = || {
            Scenario::builder()
                .population(population(500))
                .task(TaskConfig::async_task("t", 32, 8))
                .limits(RunLimits::default().with_max_virtual_time_hours(0.5))
                .eval(EvalPolicy::default().with_interval_s(600.0))
                .seed(11)
                .build()
                .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.tasks[0].final_loss, b.tasks[0].final_loss);
        assert_eq!(a.tasks[0].comm_trips(), b.tasks[0].comm_trips());
    }

    #[test]
    fn parallel_run_is_bit_identical_to_sequential() {
        let run = |parallelism: Parallelism| {
            Scenario::builder()
                .population(population(500))
                .task(TaskConfig::async_task("t", 32, 8))
                .limits(RunLimits::default().with_max_virtual_time_hours(0.5))
                .eval(EvalPolicy::default().with_interval_s(600.0))
                .parallelism(parallelism)
                .seed(11)
                .build()
                .run()
        };
        let sequential = run(Parallelism::sequential());
        assert!(sequential.events_processed > 0);
        for workers in [1, 3] {
            let parallel = run(Parallelism(workers));
            assert_eq!(
                sequential.fingerprint(),
                parallel.fingerprint(),
                "{workers} workers diverged from the sequential path"
            );
        }
    }

    #[test]
    fn parallel_secure_run_is_bit_identical_to_sequential() {
        // The secure pipeline speculates mask work onto the pool (plans are
        // issued at selection time, results consumed in event order), so a
        // session-cached secure run must stay bit-identical at any thread
        // count — including the cache-hit/miss counters that feed the
        // fingerprint.
        let run = |parallelism: Parallelism| {
            Scenario::builder()
                .population(population(300))
                .task(TaskConfig::async_task("t", 16, 4).with_secagg(SecAggMode::AsyncSecAgg))
                .limits(RunLimits::default().with_max_virtual_time_hours(0.25))
                .eval(EvalPolicy::default().with_interval_s(600.0))
                .parallelism(parallelism)
                .seed(21)
                .build()
                .run()
        };
        let sequential = run(Parallelism::sequential());
        let m = &sequential.single().metrics;
        assert!(m.secure.session_cache_misses > 0, "no first contacts");
        assert!(m.secure.session_cache_hits > 0, "cache never resumed");
        assert_eq!(m.secure.dh_exchanges_saved, m.secure.session_cache_hits);
        for workers in [1, 3] {
            let parallel = run(Parallelism(workers));
            assert_eq!(
                sequential.fingerprint(),
                parallel.fingerprint(),
                "{workers} workers diverged from the sequential secure path"
            );
        }
    }

    #[test]
    fn fleet_run_can_stop_on_total_client_updates() {
        let report = Scenario::builder()
            .population(population(800))
            .task(TaskConfig::async_task("a", 32, 8))
            .task(TaskConfig::async_task("b", 32, 8))
            .fleet(FleetSpec::new(2, 2))
            .limits(
                RunLimits::default()
                    .with_max_virtual_time_hours(10.0)
                    .with_max_client_updates(300),
            )
            .eval(EvalPolicy::default().with_interval_s(600.0))
            .seed(9)
            .build()
            .run();
        assert_eq!(report.stop_reason, StopReason::MaxClientUpdates);
        assert!(report.fleet.total_comm_trips >= 300);
        assert!(report.virtual_hours < 10.0);
    }

    #[test]
    fn tier_policy_boundaries_are_inclusive() {
        let policy = TierPolicy::default();
        let device = |speed: f64| DeviceProfile {
            id: 0,
            num_examples: 10,
            speed_factor: speed,
            execution_time_s: 10.0,
            dropout_prob: 0.0,
        };
        assert_eq!(policy.tier(&device(1.25)), 2);
        assert_eq!(policy.tier(&device(1.2499)), 1);
        assert_eq!(policy.tier(&device(0.75)), 1);
        assert_eq!(policy.tier(&device(0.7499)), 0);
        assert_eq!(policy.tier(&device(0.0)), 0);

        let strict = TierPolicy::new(2.0, 1.0);
        assert_eq!(strict.tier(&device(1.9)), 1);
        assert_eq!(strict.tier(&device(2.0)), 2);
        assert_eq!(strict.tier(&device(0.99)), 0);
    }

    #[test]
    #[should_panic(expected = "fast threshold must be at least")]
    fn inverted_tier_policy_rejected() {
        let _ = TierPolicy::new(0.5, 1.0);
    }

    #[test]
    fn custom_tier_policy_changes_eligibility() {
        // With an impossibly high tier-1 threshold, a tier-1-restricted task
        // sees no eligible devices and receives no updates.
        let base = || {
            Scenario::builder()
                .population(population(400))
                .task(TaskConfig::async_task("restricted", 16, 4).with_min_capability_tier(1))
                .fleet(FleetSpec::new(1, 1))
                .limits(RunLimits::default().with_max_virtual_time_hours(0.25))
                .eval(EvalPolicy::default().with_interval_s(600.0))
                .seed(13)
        };
        let default_policy = base().build().run();
        assert!(default_policy.tasks[0].comm_trips() > 0);
        let impossible = base().tier_policy(TierPolicy::new(1e9, 1e9)).build().run();
        assert_eq!(impossible.tasks[0].comm_trips(), 0);
    }

    #[test]
    fn secagg_flag_is_honored_not_silently_ignored() {
        // Regression test for the era when `SecAggMode::AsyncSecAgg` was a
        // config flag the simulator never read: a secure run must actually
        // engage the protocol (masked updates, per-buffer key releases) and
        // must therefore fingerprint differently from the clear run.
        let run = |mode: SecAggMode| {
            Scenario::builder()
                .population(population(300))
                .task(TaskConfig::async_task("t", 16, 4).with_secagg(mode))
                .limits(RunLimits::default().with_max_virtual_time_hours(0.25))
                .eval(EvalPolicy::default().with_interval_s(600.0))
                .seed(21)
                .build()
                .run()
        };
        let clear = run(SecAggMode::Disabled);
        let secure = run(SecAggMode::AsyncSecAgg);
        let m = &secure.single().metrics;
        assert!(m.secure.masked_updates > 0, "protocol never engaged");
        assert_eq!(m.secure.masked_updates, m.aggregated_updates);
        assert_eq!(m.secure.tsa_key_releases, m.server_updates);
        assert!(m.secure.tee_bytes_in > 0);
        assert_eq!(clear.single().metrics.secure.masked_updates, 0);
        assert_eq!(clear.single().metrics.secure.tsa_key_releases, 0);
        assert_ne!(clear.fingerprint(), secure.fingerprint());
    }

    #[test]
    fn secagg_builder_knob_applies_to_every_task() {
        let scenario = Scenario::builder()
            .population(population(300))
            .task(TaskConfig::async_task("a", 16, 4))
            .task(TaskConfig::sync_task("s", 12, 0.3))
            .fleet(FleetSpec::new(1, 1))
            .secagg(SecAggMode::AsyncSecAgg)
            .seed(1)
            .build();
        for task in scenario.tasks() {
            assert_eq!(task.secagg, SecAggMode::AsyncSecAgg, "{}", task.name);
        }
    }

    #[test]
    fn dp_flag_is_honored_not_silently_ignored() {
        // A DP run must actually engage the pipeline (clip bookkeeping,
        // noised releases, a growing ε) and must therefore fingerprint
        // differently from the clear run.
        let run = |dp: Option<DpConfig>| {
            let mut task = TaskConfig::async_task("t", 16, 4);
            if let Some(dp) = dp {
                task = task.with_dp(dp);
            }
            Scenario::builder()
                .population(population(300))
                .task(task)
                .limits(RunLimits::default().with_max_virtual_time_hours(0.25))
                .eval(EvalPolicy::default().with_interval_s(600.0))
                .seed(21)
                .build()
                .run()
        };
        let clear = run(None);
        let private = run(Some(DpConfig::new(10.0, 0.5).with_sampling_rate(0.1)));
        let m = &private.single().metrics;
        assert!(m.dp.releases > 0, "pipeline never engaged");
        assert_eq!(m.dp.releases, m.server_updates);
        assert_eq!(m.dp.accepted_updates, m.aggregated_updates);
        assert_eq!(m.dp.release_trace.len(), m.server_updates as usize);
        assert!(m.dp.cumulative_epsilon.is_finite() && m.dp.cumulative_epsilon > 0.0);
        assert_eq!(private.single().summary.dp_releases, m.dp.releases);
        assert_eq!(
            private.single().summary.cumulative_epsilon,
            m.dp.cumulative_epsilon
        );
        assert_eq!(clear.single().metrics.dp.releases, 0);
        assert_ne!(clear.fingerprint(), private.fingerprint());
    }

    #[test]
    fn robust_flag_is_honored_not_silently_ignored() {
        // A defended run under attack must actually engage the defense
        // (estimator releases, synced telemetry, ground-truth attack
        // counts) and must therefore fingerprint differently from the
        // clear run.
        let run = |defended: bool| {
            let mut task = TaskConfig::async_task("t", 16, 4);
            if defended {
                task = task
                    .with_robust(RobustConfig::new(
                        papaya_core::RobustDefense::CoordinateMedian,
                    ))
                    .with_adversary(AdversarySpec::new(
                        0.3,
                        papaya_core::Malice::SignFlip { scale: 10.0 },
                    ));
            }
            Scenario::builder()
                .population(population(300))
                .task(task)
                .limits(RunLimits::default().with_max_virtual_time_hours(0.25))
                .eval(EvalPolicy::default().with_interval_s(600.0))
                .seed(21)
                .build()
                .run()
        };
        let clear = run(false);
        let defended = run(true);
        let m = &defended.single().metrics;
        assert!(m.robust.estimator_releases > 0, "estimator never engaged");
        assert_eq!(m.robust.estimator_releases, m.server_updates);
        assert_eq!(m.robust.estimator_trace.len(), m.server_updates as usize);
        assert!(m.attacked_updates > 0, "the cohort never attacked");
        assert_eq!(m.attacks_by_label.values().sum::<u64>(), m.attacked_updates);
        assert_eq!(
            defended.single().summary.robust_estimator_releases,
            m.robust.estimator_releases
        );
        assert_eq!(
            defended.single().summary.attacked_updates,
            m.attacked_updates
        );
        assert_eq!(clear.single().metrics.robust.estimator_releases, 0);
        assert_ne!(clear.fingerprint(), defended.fingerprint());
    }

    #[test]
    fn neutral_defense_over_an_honest_population_is_bit_identical_to_clear() {
        // The neutral defense adds telemetry availability and nothing
        // else: with no attacker, the run — including its fingerprint —
        // must match the clear run bit-for-bit.
        let run = |neutral_defense: bool| {
            let mut task = TaskConfig::async_task("t", 16, 4);
            if neutral_defense {
                task = task.with_robust(RobustConfig::neutral());
            }
            Scenario::builder()
                .population(population(300))
                .task(task)
                .limits(RunLimits::default().with_max_virtual_time_hours(0.25))
                .eval(EvalPolicy::default().with_interval_s(600.0))
                .seed(21)
                .build()
                .run()
        };
        let clear = run(false);
        let defended = run(true);
        assert_eq!(clear.fingerprint(), defended.fingerprint());
    }

    #[test]
    fn robust_and_adversary_builder_knobs_apply_to_every_task() {
        let robust =
            RobustConfig::new(papaya_core::RobustDefense::TrimmedMean { trim_fraction: 0.2 });
        let adversary = AdversarySpec::new(0.1, papaya_core::Malice::StalenessLiar);
        let scenario = Scenario::builder()
            .population(population(300))
            .task(TaskConfig::async_task("a", 16, 4))
            .task(TaskConfig::sync_task("s", 12, 0.3))
            .fleet(FleetSpec::new(1, 1))
            .robust(robust)
            .adversary(adversary)
            .seed(1)
            .build();
        for task in scenario.tasks() {
            assert_eq!(task.robust, Some(robust), "{}", task.name);
            assert_eq!(task.adversary, Some(adversary), "{}", task.name);
        }
    }

    #[test]
    #[should_panic(expected = "trim fraction")]
    fn invalid_robust_config_is_rejected_at_build() {
        Scenario::builder()
            .population(population(10))
            .task(
                TaskConfig::async_task("t", 4, 2).with_robust(RobustConfig::new(
                    papaya_core::RobustDefense::TrimmedMean { trim_fraction: 0.5 },
                )),
            )
            .build();
    }

    #[test]
    #[should_panic(expected = "fraction")]
    fn invalid_adversary_spec_is_rejected_at_build() {
        Scenario::builder()
            .population(population(10))
            .task(
                TaskConfig::async_task("t", 4, 2)
                    .with_adversary(AdversarySpec::new(1.5, papaya_core::Malice::StalenessLiar)),
            )
            .build();
    }

    #[test]
    fn privacy_budget_stops_the_run() {
        // A tight ε budget stops the run long before the virtual-time
        // limit; the cumulative ε never overshoots by more than one
        // release.
        let report = Scenario::builder()
            .population(population(300))
            .task(
                TaskConfig::async_task("t", 16, 4).with_dp(
                    DpConfig::new(10.0, 1.0)
                        .with_target_delta(1e-5)
                        .with_epsilon_budget(20.0),
                ),
            )
            .limits(RunLimits::default().with_max_virtual_time_hours(50.0))
            .eval(EvalPolicy::default().with_interval_s(600.0))
            .seed(22)
            .build()
            .run();
        assert_eq!(report.stop_reason, StopReason::PrivacyBudgetExhausted);
        assert!(report.virtual_hours < 50.0);
        let m = &report.single().metrics;
        assert!(m.dp.cumulative_epsilon >= 20.0);
        // The release *before* the stop was still inside the budget.
        if m.dp.release_trace.len() >= 2 {
            let previous = m.dp.release_trace[m.dp.release_trace.len() - 2];
            assert!(previous.cumulative_epsilon < 20.0);
        }
    }

    #[test]
    fn dp_builder_knob_applies_to_every_task() {
        let dp = DpConfig::new(5.0, 1.0);
        let scenario = Scenario::builder()
            .population(population(300))
            .task(TaskConfig::async_task("a", 16, 4))
            .task(TaskConfig::sync_task("s", 12, 0.3))
            .fleet(FleetSpec::new(1, 1))
            .dp(dp)
            .seed(1)
            .build();
        for task in scenario.tasks() {
            assert_eq!(task.dp, Some(dp), "{}", task.name);
        }
    }

    #[test]
    #[should_panic(expected = "noise multiplier must be non-negative")]
    fn invalid_dp_config_rejected_at_build() {
        let _ = Scenario::builder()
            .population(population(100))
            .task(TaskConfig::async_task("t", 8, 2).with_dp(DpConfig::new(1.0, -1.0)))
            .build();
    }

    #[test]
    #[should_panic(expected = "min_capability_tier is enforced by Selector routing")]
    fn capability_tier_without_fleet_rejected() {
        // A direct scenario has no Selectors, so a tier restriction would be
        // silently ignored — the builder must reject it instead.
        let _ = Scenario::builder()
            .population(population(100))
            .task(TaskConfig::async_task("t", 8, 2).with_min_capability_tier(1))
            .build();
    }

    #[test]
    #[should_panic(expected = "client timeout must be positive and finite")]
    fn non_finite_timeout_rejected() {
        let _ = Scenario::builder()
            .population(population(100))
            .task(TaskConfig::async_task("t", 8, 2).with_timeout(f64::NAN))
            .build();
    }

    #[test]
    #[should_panic(expected = "drive exactly one task")]
    fn multi_task_without_fleet_rejected() {
        let _ = Scenario::builder()
            .population(population(100))
            .task(TaskConfig::async_task("a", 8, 2))
            .task(TaskConfig::async_task("b", 8, 2))
            .build();
    }

    #[test]
    #[should_panic(expected = "crash injection requires a fleet")]
    fn crash_without_fleet_rejected() {
        let _ = Scenario::builder()
            .population(population(100))
            .task(TaskConfig::async_task("a", 8, 2))
            .crash_at(10.0, 0)
            .build();
    }

    #[test]
    fn stop_reasons_display_readably() {
        assert_eq!(
            StopReason::TargetLossReached.to_string(),
            "target loss reached"
        );
        assert_eq!(
            StopReason::MaxVirtualTime.to_string(),
            "virtual-time budget exhausted"
        );
        assert_eq!(
            StopReason::MaxClientUpdates.to_string(),
            "client-update budget exhausted"
        );
        assert_eq!(
            StopReason::PrivacyBudgetExhausted.to_string(),
            "privacy budget exhausted"
        );
    }

    #[test]
    fn timed_hybrid_strategy_runs_end_to_end() {
        // Aggregation goal far above what the concurrency can deliver: only
        // the deadline can release buffers, so every server update proves
        // the third strategy works through the whole stack.  The huge
        // utilization-sampler interval pins down that releases come from
        // exact deadline events, not from piggybacking on periodic polls.
        let report = Scenario::builder()
            .population(population(400))
            .task(TaskConfig::timed_hybrid_task("hybrid", 24, 10_000, 240.0))
            .limits(RunLimits::default().with_max_virtual_time_hours(2.0))
            .eval(EvalPolicy::default().with_interval_s(600.0))
            .utilization_sample_interval_s(1e6)
            .seed(7)
            .build()
            .run();
        let task = report.single();
        // 2 h / 240 s deadline ≈ 30 release windows; allow slack for
        // arrival gaps but demand far more than a sampler-driven run
        // (interval 1e6 s) could produce.
        assert!(
            task.server_updates() > 15,
            "deadline releases did not happen on time: {}",
            task.server_updates()
        );
        assert!(task.final_loss < task.initial_loss);
    }
}
