//! Property tests for the fixed-point codec (Appendix D).
//!
//! The codec is the numerical foundation of the secure pipeline: the
//! equivalence of a secure run and a clear run rests on (1) a bounded
//! encode/decode roundtrip error, (2) the linearity of encoding under group
//! addition (`sum of encodings == encoding of sum` as long as the aggregate
//! stays in range), and (3) well-defined saturation/wrap behavior at the
//! extremes a full aggregation buffer can reach.  Each property is checked
//! over random scales, moduli, and values.

use papaya_secagg::fixed_point::FixedPointCodec;
use papaya_secagg::group::{GroupParams, GroupVec};
use proptest::prelude::*;

/// A codec over `Z_{2^32}` with a random power-of-two scale.
fn codec(scale_pow: u32) -> FixedPointCodec {
    FixedPointCodec::new(GroupParams::z2_32(), (1u64 << scale_pow) as f64)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Roundtrip error is at most one quantum (`1/scale`) plus `f32`
    /// representation noise, for any in-range value at any scale.
    #[test]
    fn roundtrip_error_is_bounded_by_one_quantum(
        v in -30_000.0f32..30_000.0,
        scale_pow in 8u32..20,
    ) {
        let c = codec(scale_pow);
        prop_assume!((v as f64).abs() < c.max_magnitude() - 1.0);
        let decoded = c.decode_value(c.encode_value(v));
        let tolerance = 1.0 / c.scale() as f32 + v.abs() * f32::EPSILON * 4.0;
        prop_assert!(
            (decoded - v).abs() <= tolerance,
            "scale 2^{scale_pow}: {v} -> {decoded}"
        );
    }

    /// Linearity under the modulus: summing `k` encodings in the group and
    /// decoding equals the real sum within `k` quanta — the property that
    /// makes masked ciphertext-space aggregation decode to the true
    /// aggregate.
    #[test]
    fn sum_of_encodings_is_encoding_of_sum(
        values in proptest::collection::vec(-100.0f32..100.0, 1..48),
        scale_pow in 10u32..18,
    ) {
        let c = codec(scale_pow);
        let mut acc = GroupVec::zeros(c.params(), 1);
        let mut real_sum = 0.0f64;
        for &v in &values {
            acc.add_assign(&c.encode_vec(&[v]));
            real_sum += v as f64;
        }
        // 48 * 100 stays far inside Z_{2^32}'s ±(2^31/scale) range.
        let decoded = c.decode_vec(&acc)[0] as f64;
        let tolerance = values.len() as f64 / c.scale() + real_sum.abs() * 1e-6;
        prop_assert!(
            (decoded - real_sum).abs() <= tolerance,
            "k={}: {decoded} vs {real_sum}",
            values.len()
        );
    }

    /// Group addition of two in-range encodings never loses integer bits:
    /// the decoded pairwise sum equals the sum of the two decoded values up
    /// to `f32` representation noise (the integer addition below the wrap
    /// point is itself lossless; only the final `f32` conversion rounds).
    #[test]
    fn pairwise_group_addition_is_exact_on_decoded_values(
        a in -10_000.0f32..10_000.0,
        b in -10_000.0f32..10_000.0,
        scale_pow in 8u32..16,
    ) {
        let c = codec(scale_pow);
        let ea = c.encode_value(a);
        let eb = c.encode_value(b);
        let sum = c.decode_value(c.params().add(ea, eb)) as f64;
        let exact = c.decode_value(ea) as f64 + c.decode_value(eb) as f64;
        let tolerance = (a.abs() + b.abs()) as f64 * f32::EPSILON as f64 * 4.0 + 1e-12;
        prop_assert!((sum - exact).abs() <= tolerance, "{sum} vs {exact}");
    }

    /// Values beyond the representable range saturate at the range boundary
    /// instead of wrapping: the decoded value sits within one quantum of
    /// `±max_magnitude` and keeps the sign of the input.
    #[test]
    fn out_of_range_values_saturate_at_the_boundary(
        magnitude in 1.0f64..1e12,
        negative in any::<bool>(),
        scale_pow in 8u32..16,
    ) {
        let c = codec(scale_pow);
        let v = (c.max_magnitude() * (1.0 + magnitude)) as f32 * if negative { -1.0 } else { 1.0 };
        let decoded = c.decode_value(c.encode_value(v)) as f64;
        let quantum = 1.0 / c.scale();
        if negative {
            prop_assert!((decoded + c.max_magnitude()).abs() <= quantum, "{decoded}");
        } else {
            prop_assert!(
                (decoded - c.max_magnitude()).abs() <= quantum && decoded <= c.max_magnitude(),
                "{decoded} vs {}",
                c.max_magnitude()
            );
        }
    }

    /// The buffer-size extreme: a buffer of `k` saturated positive updates
    /// overflows the signed range and wraps — decoding the group sum equals
    /// the mathematically wrapped (mod-centered) value, not the real sum.
    /// This is exactly why deployments must pick `n` and the scale with the
    /// aggregate's magnitude in mind (Appendix D).
    #[test]
    fn saturated_buffers_wrap_predictably(
        k in 2u64..32,
        scale_pow in 8u32..14,
    ) {
        let c = codec(scale_pow);
        let n = c.params().modulus();
        let max_encoding = c.encode_value(1e30); // saturates to n/2 - 1
        prop_assert_eq!(max_encoding, n / 2 - 1);
        let mut acc = 0u64;
        for _ in 0..k {
            acc = c.params().add(acc, max_encoding);
        }
        // Integer model of the same wrap: k * (n/2 - 1) mod n, re-centered.
        let expected_int = (k as u128 * (n as u128 / 2 - 1) % n as u128) as u64;
        let expected = c.decode_value(expected_int);
        prop_assert_eq!(c.decode_value(acc), expected);
        // With at least two saturated contributions the aggregate has left
        // the representable range, so the decode cannot equal the real sum.
        let real_sum = k as f64 * c.max_magnitude();
        prop_assert!((c.decode_value(acc) as f64 - real_sum).abs() > 1.0);
    }
}
