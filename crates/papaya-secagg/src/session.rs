//! Session-cached key exchange and speculative mask precompute.
//!
//! The per-update protocol in [`crate::client`] pays four group
//! exponentiations per masked update (two key generations, two shared
//! secrets).  At production scale the same device participates in many
//! aggregation rounds, so PAPAYA amortizes the handshake: the first
//! participation establishes a Diffie–Hellman session with the TSA's
//! per-epoch key, and every later participation *ratchets* a fresh one-time
//! mask seed from the established shared secret and a strictly increasing
//! participation counter.  The exponentiation cost drops from `4·K` per `K`
//! updates to `3·C` for `C` distinct clients (client keygen, client shared
//! secret, TSA shared secret) plus one TSA key generation per epoch.
//!
//! Security invariants preserved from the per-update protocol:
//!
//! * **One seed per mask.**  `ratchet_seed(secret, counter)` is used at most
//!   once per `(secret, counter)` pair; the TSA enforces a monotone counter
//!   floor per session and the host burns a counter per planned
//!   participation, even when the upload is later rejected.
//! * **Attestation before secrets.**  A session is only established after
//!   the client verifies the TSA's quote over its epoch public key, exactly
//!   as in the per-update flow.
//! * **Invalidation.**  Publishing a new trusted binary, revoking an unused
//!   exchange, or an aggregator crash/`reset` bumps the TSA epoch and clears
//!   every cached session, forcing fresh handshakes.
//!
//! The [`MaskPlan`]/[`PrecomputedMask`] pair makes the expensive half of a
//! participation *pure*: a plan captures `(session secret or handshake
//! material, counter, vector length, group)`, and [`MaskPlan::compute`] is a
//! deterministic function of the plan alone.  The simulator exploits this to
//! run mask expansion speculatively on the training worker pool at selection
//! time, with the same submit/strict-consume/discard discipline as
//! speculative training — bit-identical results at any thread count.

use crate::attestation::{verify_quote, AttestationQuote, TsaPublication};
use crate::group::{GroupParams, GroupVec};
use crate::mask::{expand_mask_into, MaskSeed, SEED_LEN};
use papaya_crypto::chacha20::ChaCha20Rng;
use papaya_crypto::dh::{DhGroup, DhPrecomputedPublic, DhPrivateKey, DhPublicKey, SharedSecret};
use papaya_crypto::hmac::hmac_sha256;

/// Derives the one-time mask seed for one participation of an established
/// session: the first [`SEED_LEN`] bytes of
/// `HMAC-SHA256(secret, "papaya/session-mask/" || counter)`.
///
/// Both the client (masking) and the TSA (unmasking) run this exact
/// function, so the masks cancel; distinct counters yield independent
/// seeds, so no pad is ever reused while the counter discipline holds.
pub fn ratchet_seed(secret: &SharedSecret, counter: u64) -> MaskSeed {
    let mut message = b"papaya/session-mask/".to_vec();
    message.extend_from_slice(&counter.to_be_bytes());
    let digest = hmac_sha256(secret, &message);
    let mut seed = [0u8; SEED_LEN];
    seed.copy_from_slice(&digest[..SEED_LEN]);
    seed
}

/// The TSA's per-epoch session offer: its Diffie–Hellman public key for the
/// current epoch and an attestation quote over it.  Unlike
/// [`crate::protocol::KeyExchangeInitialMessage`] this is **not** single-use
/// — every client establishing a session in the epoch completes against the
/// same key, so the TSA crosses the boundary once per epoch instead of once
/// per update.
#[derive(Clone, Debug)]
pub struct SessionInitMessage {
    /// Epoch this key belongs to; bumped on every invalidation.
    pub epoch: u64,
    /// The TSA's epoch public key.
    pub tsa_public: DhPublicKey,
    /// Quote binding the binary, the parameters, and the epoch public key.
    pub quote: AttestationQuote,
}

impl SessionInitMessage {
    /// Serialized size in bytes (key + quote), for boundary accounting.
    pub fn byte_len(&self) -> usize {
        self.tsa_public.to_bytes().len() + 128
    }
}

/// A compact reference to one session-mode masked update: which client's
/// session and which ratchet counter produced its mask.  This is all the
/// TSA needs to regenerate the mask — 16 bytes per update instead of a
/// per-update completing message.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MaskRef {
    /// The session owner's stable client id.
    pub client_id: u64,
    /// The ratchet counter of this participation.
    pub counter: u64,
}

impl MaskRef {
    /// Serialized size in bytes, for boundary accounting.
    pub const BYTE_LEN: usize = 16;
}

/// The client half of a freshly established session: the public key to
/// forward to the TSA and the shared secret to cache.
#[derive(Clone, Debug)]
pub struct SessionHandshake {
    /// The client's session public key (crosses into the TSA once).
    pub client_public: DhPublicKey,
    /// The established shared secret.
    pub secret: SharedSecret,
}

/// What kind of work a [`MaskPlan`] requires.
#[derive(Clone, Debug)]
pub enum MaskPlanKind {
    /// A cached session exists: only the ratchet + mask expansion run.
    Resumed {
        /// The cached session secret.
        secret: SharedSecret,
    },
    /// First contact (or post-invalidation): the full handshake runs first.
    /// Boxed: the handshake material (group, epoch offer, publication) is
    /// two orders of magnitude larger than a cached secret.
    Handshake(Box<HandshakePlan>),
}

/// Everything a first-contact plan needs to establish the session.
#[derive(Clone, Debug)]
pub struct HandshakePlan {
    /// The Diffie–Hellman group of the deployment.
    pub group: DhGroup,
    /// Seed of the client's deterministic session key RNG.
    pub client_key_seed: [u8; 32],
    /// The TSA's epoch offer to complete against.
    pub init: SessionInitMessage,
    /// The publication used to verify the TSA's quote before any secret is
    /// derived.
    pub publication: TsaPublication,
    /// Fixed-base window table for the TSA's epoch key.  Every first-contact
    /// handshake of an epoch exponentiates the same `tsa_public`, so the
    /// planner builds this table once per epoch and shares it (via `Arc`)
    /// across all handshake plans; `None` falls back to plain
    /// exponentiation.  Either path derives the bit-identical secret.
    pub tsa_precomputed: Option<DhPrecomputedPublic>,
}

/// A self-contained description of one participation's mask work, pure in
/// its fields: computing it twice yields bit-identical results.
#[derive(Clone, Debug)]
pub struct MaskPlan {
    /// Monotonic id used by the planner to reject stale speculative results
    /// after an invalidation.
    pub plan_id: u64,
    /// The ratchet counter burned for this participation.
    pub counter: u64,
    /// Mask length (the model's flattened parameter count).
    pub vector_len: usize,
    /// The masking group.
    pub params: GroupParams,
    /// Resumed session or full handshake.
    pub kind: MaskPlanKind,
}

/// The result of [`MaskPlan::compute`]: the expanded mask and, for a
/// first-contact plan, the handshake to install in the caches.
#[derive(Clone, Debug)]
pub struct PrecomputedMask {
    /// Echo of [`MaskPlan::plan_id`].
    pub plan_id: u64,
    /// The expanded one-time pad.
    pub mask: GroupVec,
    /// Present when the plan performed a handshake.
    pub handshake: Option<SessionHandshake>,
}

/// A reusable expansion buffer so repeated [`MaskPlan::compute`] calls on
/// one worker allocate once per mask instead of twice.
#[derive(Debug, Default)]
pub struct MaskScratch {
    /// The staging buffer; keeps its capacity across computations.
    pub values: Vec<u64>,
}

/// Runs the client side of a session establishment: verifies the TSA's
/// quote, derives the client's session key from `key_seed`, and completes
/// the exchange against the TSA's epoch public key.
///
/// # Panics
///
/// Panics when the attestation quote does not verify — the client must not
/// derive any secret against an unattested key, mirroring the per-update
/// client's abort.
pub fn client_handshake(
    group: &DhGroup,
    key_seed: &[u8; 32],
    init: &SessionInitMessage,
    publication: &TsaPublication,
) -> SessionHandshake {
    handshake_inner(group, key_seed, init, publication, None)
}

/// Shared handshake body; when a fixed-base table for the TSA's epoch key is
/// supplied the completing exponentiation skips every squaring, with
/// bit-identical output.
fn handshake_inner(
    group: &DhGroup,
    key_seed: &[u8; 32],
    init: &SessionInitMessage,
    publication: &TsaPublication,
    tsa_precomputed: Option<&DhPrecomputedPublic>,
) -> SessionHandshake {
    verify_quote(publication, &init.quote, &init.tsa_public.to_bytes())
        // papaya-lint: allow(panic-hygiene) -- a failed attestation means simulated-protocol wiring is broken; continuing would mask a security-model bug
        .expect("TSA attestation failed; refusing to establish a session");
    let mut rng = ChaCha20Rng::from_seed(*key_seed);
    let client_key = DhPrivateKey::generate(group, &mut rng);
    let secret = match tsa_precomputed {
        Some(pre) => {
            debug_assert_eq!(pre.public_key(), init.tsa_public, "table/offer mismatch");
            client_key.shared_secret_precomputed(pre)
        }
        None => client_key.shared_secret(&init.tsa_public),
    };
    SessionHandshake {
        client_public: client_key.public_key(),
        secret,
    }
}

impl MaskPlan {
    /// Executes the plan: handshake if needed, ratchet, mask expansion.
    /// Deterministic in the plan's fields; safe to run on any worker thread.
    pub fn compute(&self, scratch: &mut MaskScratch) -> PrecomputedMask {
        let (secret, handshake) = match &self.kind {
            MaskPlanKind::Resumed { secret } => (*secret, None),
            MaskPlanKind::Handshake(plan) => {
                let handshake = handshake_inner(
                    &plan.group,
                    &plan.client_key_seed,
                    &plan.init,
                    &plan.publication,
                    plan.tsa_precomputed.as_ref(),
                );
                (handshake.secret, Some(handshake))
            }
        };
        let seed = ratchet_seed(&secret, self.counter);
        expand_mask_into(&seed, self.params, self.vector_len, &mut scratch.values);
        PrecomputedMask {
            plan_id: self.plan_id,
            mask: GroupVec::from_reduced(self.params, scratch.values.clone()),
            handshake,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mask::expand_mask;
    use crate::protocol::SecAggConfig;
    use crate::tsa::Tsa;

    #[test]
    fn ratchet_seed_is_deterministic_and_counter_separated() {
        // Proptest-style sweep: across many secrets and counters, the same
        // (secret, counter) always yields the same seed and no two distinct
        // counters ever collide — counters never reuse a pad.
        let mut rng = ChaCha20Rng::from_seed([0x51u8; 32]);
        for _ in 0..32 {
            let mut secret = [0u8; 32];
            rng.fill_bytes(&mut secret);
            let mut seen = std::collections::HashSet::new();
            for counter in 0..64u64 {
                let seed = ratchet_seed(&secret, counter);
                assert_eq!(seed, ratchet_seed(&secret, counter));
                assert!(seen.insert(seed), "counter {counter} reused a seed");
            }
        }
    }

    #[test]
    fn distinct_secrets_give_distinct_seeds() {
        let a = ratchet_seed(&[1u8; 32], 7);
        let b = ratchet_seed(&[2u8; 32], 7);
        assert_ne!(a, b);
    }

    #[test]
    fn resumed_plan_mask_equals_fresh_handshake_mask() {
        // The session-cache correctness core: for the same (secret, counter)
        // a resumed plan and a handshake plan expand the identical mask.
        let config = SecAggConfig::insecure_fast(64, 2);
        let mut tsa = Tsa::new(&config, [0x21u8; 32]);
        let publication = tsa.publication();
        let init = tsa.session_init();
        let key_seed = [0x33u8; 32];
        let handshake_plan = MaskPlan {
            plan_id: 0,
            counter: 5,
            vector_len: 64,
            params: config.group_params(),
            kind: MaskPlanKind::Handshake(Box::new(HandshakePlan {
                group: config.dh_group.clone(),
                client_key_seed: key_seed,
                init: init.clone(),
                publication: publication.clone(),
                tsa_precomputed: None,
            })),
        };
        let mut scratch = MaskScratch::default();
        let fresh = handshake_plan.compute(&mut scratch);

        // The fixed-base fast path must be indistinguishable from the plain
        // exponentiation: same mask, same installed secret.
        let mut fast_plan = handshake_plan.clone();
        if let MaskPlanKind::Handshake(plan) = &mut fast_plan.kind {
            plan.tsa_precomputed = Some(config.dh_group.precompute_public(&init.tsa_public));
        }
        let fast = fast_plan.compute(&mut scratch);
        assert_eq!(fresh.mask, fast.mask);
        assert_eq!(
            fresh.handshake.as_ref().unwrap().secret,
            fast.handshake.as_ref().unwrap().secret
        );
        let secret = fresh.handshake.as_ref().expect("handshake ran").secret;
        let resumed_plan = MaskPlan {
            plan_id: 1,
            counter: 5,
            vector_len: 64,
            params: config.group_params(),
            kind: MaskPlanKind::Resumed { secret },
        };
        let resumed = resumed_plan.compute(&mut scratch);
        assert_eq!(fresh.mask, resumed.mask);
        assert!(resumed.handshake.is_none());
        // And both equal the direct expansion of the ratcheted seed.
        let direct = expand_mask(&ratchet_seed(&secret, 5), config.group_params(), 64);
        assert_eq!(resumed.mask, direct);
    }

    #[test]
    fn compute_is_pure_across_scratch_reuse_and_instances() {
        let config = SecAggConfig::insecure_fast(32, 1);
        let plan = MaskPlan {
            plan_id: 9,
            counter: 3,
            vector_len: 32,
            params: config.group_params(),
            kind: MaskPlanKind::Resumed { secret: [7u8; 32] },
        };
        let mut a = MaskScratch::default();
        let mut b = MaskScratch {
            values: vec![99; 1000],
        };
        assert_eq!(plan.compute(&mut a).mask, plan.compute(&mut b).mask);
        assert_eq!(plan.compute(&mut a).mask, plan.compute(&mut a).mask);
    }

    #[test]
    #[should_panic(expected = "attestation failed")]
    fn handshake_refuses_unattested_key() {
        let config = SecAggConfig::insecure_fast(8, 1);
        let mut tsa = Tsa::new(&config, [0x44u8; 32]);
        let mut publication = tsa.publication();
        let init = tsa.session_init();
        publication.expected_measurement = [0u8; 32];
        let _ = client_handshake(&config.dh_group, &[1u8; 32], &init, &publication);
    }

    #[test]
    fn mask_ref_byte_len_matches_fields() {
        let r = MaskRef {
            client_id: 1,
            counter: 2,
        };
        assert_eq!(
            MaskRef::BYTE_LEN,
            std::mem::size_of_val(&r.client_id) + std::mem::size_of_val(&r.counter)
        );
    }
}
