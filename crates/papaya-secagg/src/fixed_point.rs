//! Fixed-point conversion between real-valued model updates and finite-group
//! elements (Appendix D).
//!
//! A real number `a` is scaled by `c`, rounded to the nearest integer, and
//! mapped into `Z_n` with the signed range `[-⌊n/2⌋, ⌈n/2⌉)`.  Plain integer
//! addition and group addition agree as long as the aggregated sum stays
//! inside that range, so the parties must choose `c` and `n` with the scale
//! of the aggregate in mind.

use crate::group::{GroupParams, GroupVec};

/// Encoder/decoder between `f32` vectors and group-element vectors.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FixedPointCodec {
    params: GroupParams,
    scale: f64,
}

impl FixedPointCodec {
    /// Creates a codec for the given group and scaling factor.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not strictly positive and finite.
    pub fn new(params: GroupParams, scale: f64) -> Self {
        assert!(scale.is_finite() && scale > 0.0, "scale must be positive");
        FixedPointCodec { params, scale }
    }

    /// A sensible default for model deltas: group `Z_{2^32}` with scale
    /// `2^16`, supporting aggregated magnitudes up to ±32767 with ~1.5e-5
    /// resolution.
    pub fn default_for_updates() -> Self {
        FixedPointCodec::new(GroupParams::z2_32(), 65_536.0)
    }

    /// The underlying group parameters.
    pub fn params(&self) -> GroupParams {
        self.params
    }

    /// The scaling factor `c`.
    pub fn scale(&self) -> f64 {
        self.scale
    }

    /// Largest representable magnitude for a (sum of) real value(s).
    pub fn max_magnitude(&self) -> f64 {
        (self.params.modulus() / 2) as f64 / self.scale
    }

    /// Encodes a single real value as a group element.
    pub fn encode_value(&self, v: f32) -> u64 {
        let n = self.params.modulus();
        let scaled = (v as f64 * self.scale).round();
        let half = (n / 2) as f64;
        let clamped = scaled.clamp(-half, half - 1.0);
        let int = clamped as i64;
        if int >= 0 {
            self.params.reduce(int as u64)
        } else {
            self.params.reduce(n - (int.unsigned_abs() % n))
        }
    }

    /// Decodes a group element back to a real value, interpreting the upper
    /// half of the group as negative numbers.
    pub fn decode_value(&self, v: u64) -> f32 {
        let n = self.params.modulus();
        let v = self.params.reduce(v);
        let signed = if v >= n.div_ceil(2) {
            v as i64 - n as i64
        } else {
            v as i64
        };
        (signed as f64 / self.scale) as f32
    }

    /// Encodes a slice of reals as a group vector.
    pub fn encode_vec(&self, values: &[f32]) -> GroupVec {
        GroupVec::from_values(
            self.params,
            values.iter().map(|&v| self.encode_value(v)).collect(),
        )
    }

    /// Decodes a group vector back to reals.
    ///
    /// # Panics
    ///
    /// Panics if the vector belongs to a different group.
    pub fn decode_vec(&self, vec: &GroupVec) -> Vec<f32> {
        assert_eq!(vec.params(), self.params, "group mismatch");
        vec.values().iter().map(|&v| self.decode_value(v)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codec() -> FixedPointCodec {
        FixedPointCodec::default_for_updates()
    }

    #[test]
    fn roundtrip_within_resolution() {
        let c = codec();
        for v in [-100.0f32, -1.5, -0.0001, 0.0, 0.0001, 0.5, 3.25, 250.0] {
            let decoded = c.decode_value(c.encode_value(v));
            assert!(
                (decoded - v).abs() <= 1.0 / c.scale() as f32,
                "roundtrip failed for {v}: got {decoded}"
            );
        }
    }

    #[test]
    fn group_addition_matches_real_addition() {
        let c = codec();
        let a = [0.25f32, -1.5, 100.0, -0.125];
        let b = [0.5f32, 2.25, -99.5, 0.375];
        let ea = c.encode_vec(&a);
        let eb = c.encode_vec(&b);
        let sum = c.decode_vec(&ea.add(&eb));
        for i in 0..a.len() {
            assert!(
                (sum[i] - (a[i] + b[i])).abs() < 2.0 / c.scale() as f32,
                "element {i}: {} vs {}",
                sum[i],
                a[i] + b[i]
            );
        }
    }

    #[test]
    fn many_party_sum_is_exact_in_the_group() {
        // Aggregating 100 encoded updates then decoding equals the sum of
        // individually decoded values (integer addition never loses bits).
        let c = codec();
        let params = c.params();
        let mut acc = GroupVec::zeros(params, 1);
        let mut expected = 0.0f64;
        for i in 0..100 {
            let v = (i as f32 - 50.0) * 0.01;
            expected += c.decode_value(c.encode_value(v)) as f64;
            acc.add_assign(&c.encode_vec(&[v]));
        }
        let decoded = c.decode_vec(&acc)[0] as f64;
        assert!((decoded - expected).abs() < 1e-6, "{decoded} vs {expected}");
    }

    #[test]
    fn negative_values_use_upper_half_of_group() {
        let c = codec();
        let encoded = c.encode_value(-1.0);
        assert!(encoded > c.params().modulus() / 2);
        assert!((c.decode_value(encoded) + 1.0).abs() < 1e-4);
    }

    #[test]
    fn values_beyond_range_are_clamped() {
        let c = FixedPointCodec::new(GroupParams::new(1 << 16), 256.0);
        // max magnitude = 2^15 / 256 = 128
        assert!((c.max_magnitude() - 128.0).abs() < 1e-9);
        let encoded = c.encode_value(1e9);
        let decoded = c.decode_value(encoded);
        assert!(decoded <= 128.0 && decoded > 100.0);
    }

    #[test]
    fn small_odd_modulus_roundtrip() {
        let c = FixedPointCodec::new(GroupParams::new(101), 1.0);
        for v in [-50.0f32, -1.0, 0.0, 1.0, 49.0] {
            assert_eq!(c.decode_value(c.encode_value(v)), v);
        }
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_rejected() {
        let _ = FixedPointCodec::new(GroupParams::z2_32(), 0.0);
    }
}
