//! Finite Abelian group vectors used for additive one-time-pad masking.
//!
//! The protocol operates on vectors over `Z_n` (Appendix A.2 / D).  Elements
//! are stored as `u64` with `n <= 2^32` by default so element-wise addition
//! never overflows before the modular reduction.

/// Parameters of the finite group `Z_n`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GroupParams {
    modulus: u64,
}

impl GroupParams {
    /// The default group `Z_{2^32}` used for 32-bit fixed-point updates.
    pub fn z2_32() -> Self {
        GroupParams {
            modulus: 1u64 << 32,
        }
    }

    /// A group with an arbitrary modulus `n >= 2`.
    ///
    /// # Panics
    ///
    /// Panics if `modulus < 2`.
    pub fn new(modulus: u64) -> Self {
        assert!(modulus >= 2, "group modulus must be at least 2");
        GroupParams { modulus }
    }

    /// The group modulus `n`.
    pub fn modulus(&self) -> u64 {
        self.modulus
    }

    /// Reduces a value into the group.
    #[inline]
    pub fn reduce(&self, v: u64) -> u64 {
        v % self.modulus
    }

    /// Additive inverse of `v` in the group.
    #[inline]
    pub fn negate(&self, v: u64) -> u64 {
        let v = self.reduce(v);
        if v == 0 {
            0
        } else {
            self.modulus - v
        }
    }

    /// Group addition.
    #[inline]
    pub fn add(&self, a: u64, b: u64) -> u64 {
        (self.reduce(a) + self.reduce(b)) % self.modulus
    }

    /// Group subtraction.
    #[inline]
    pub fn sub(&self, a: u64, b: u64) -> u64 {
        self.add(a, self.negate(b))
    }
}

/// A vector of group elements.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GroupVec {
    params: GroupParams,
    values: Vec<u64>,
}

impl GroupVec {
    /// The all-zero vector of the given length.
    pub fn zeros(params: GroupParams, len: usize) -> Self {
        GroupVec {
            params,
            values: vec![0; len],
        }
    }

    /// Builds a vector from raw values (each reduced into the group).
    pub fn from_values(params: GroupParams, values: Vec<u64>) -> Self {
        let values = values.into_iter().map(|v| params.reduce(v)).collect();
        GroupVec { params, values }
    }

    /// Builds a vector from values already reduced into the group, skipping
    /// the reduction pass of [`GroupVec::from_values`].  Callers that fill a
    /// scratch buffer element-by-element with reduced values (mask
    /// expansion) use this to avoid a second walk over the vector.
    pub fn from_reduced(params: GroupParams, values: Vec<u64>) -> Self {
        debug_assert!(
            values.iter().all(|&v| v < params.modulus),
            "from_reduced given an unreduced value"
        );
        GroupVec { params, values }
    }

    /// The group parameters.
    pub fn params(&self) -> GroupParams {
        self.params
    }

    /// Vector length.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns true when the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The raw group elements.
    pub fn values(&self) -> &[u64] {
        &self.values
    }

    /// Element-wise in-place addition.
    ///
    /// # Panics
    ///
    /// Panics on length or group mismatch.
    pub fn add_assign(&mut self, other: &GroupVec) {
        assert_eq!(self.params, other.params, "group mismatch");
        assert_eq!(self.len(), other.len(), "length mismatch");
        for (a, b) in self.values.iter_mut().zip(other.values.iter()) {
            *a = self.params.add(*a, *b);
        }
    }

    /// Element-wise in-place addition of a raw slice of reduced group
    /// elements, used by the batched TSA release to accumulate many mask
    /// expansions through one reusable scratch buffer without constructing
    /// an intermediate `GroupVec` per mask.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn add_assign_slice(&mut self, other: &[u64]) {
        assert_eq!(self.len(), other.len(), "length mismatch");
        for (a, &b) in self.values.iter_mut().zip(other.iter()) {
            *a = self.params.add(*a, b);
        }
    }

    /// Element-wise sum, returning a new vector.
    pub fn add(&self, other: &GroupVec) -> GroupVec {
        let mut out = self.clone();
        out.add_assign(other);
        out
    }

    /// Element-wise in-place subtraction.
    ///
    /// # Panics
    ///
    /// Panics on length or group mismatch.
    pub fn sub_assign(&mut self, other: &GroupVec) {
        assert_eq!(self.params, other.params, "group mismatch");
        assert_eq!(self.len(), other.len(), "length mismatch");
        for (a, b) in self.values.iter_mut().zip(other.values.iter()) {
            *a = self.params.sub(*a, *b);
        }
    }

    /// Element-wise difference, returning a new vector.
    pub fn sub(&self, other: &GroupVec) -> GroupVec {
        let mut out = self.clone();
        out.sub_assign(other);
        out
    }

    /// Serialized size in bytes (used by the boundary-cost accounting):
    /// 8 bytes per element.
    pub fn byte_len(&self) -> usize {
        self.values.len() * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_sub_inverse() {
        let params = GroupParams::new(1000);
        let a = GroupVec::from_values(params, vec![1, 999, 500, 0]);
        let b = GroupVec::from_values(params, vec![999, 2, 600, 123]);
        let sum = a.add(&b);
        assert_eq!(sum.values(), &[0, 1, 100, 123]);
        assert_eq!(sum.sub(&b), a);
    }

    #[test]
    fn values_reduced_on_construction() {
        let params = GroupParams::new(10);
        let v = GroupVec::from_values(params, vec![10, 11, 25]);
        assert_eq!(v.values(), &[0, 1, 5]);
    }

    #[test]
    fn negate_is_additive_inverse() {
        let params = GroupParams::new(97);
        for v in [0u64, 1, 50, 96] {
            assert_eq!(params.add(v, params.negate(v)), 0);
        }
    }

    #[test]
    fn z2_32_no_overflow_on_many_additions() {
        let params = GroupParams::z2_32();
        let near_max = (1u64 << 32) - 1;
        let mut acc = GroupVec::zeros(params, 3);
        let v = GroupVec::from_values(params, vec![near_max, near_max, near_max]);
        for _ in 0..1000 {
            acc.add_assign(&v);
        }
        // 1000 * (2^32 - 1) mod 2^32 = -1000 mod 2^32
        assert_eq!(acc.values()[0], (1u64 << 32) - 1000);
    }

    #[test]
    fn associativity_and_commutativity() {
        let params = GroupParams::new(251);
        let a = GroupVec::from_values(params, vec![7, 13]);
        let b = GroupVec::from_values(params, vec![250, 100]);
        let c = GroupVec::from_values(params, vec![33, 249]);
        assert_eq!(a.add(&b), b.add(&a));
        assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
    }

    #[test]
    #[should_panic(expected = "group mismatch")]
    fn mismatched_groups_panic() {
        let a = GroupVec::zeros(GroupParams::new(7), 2);
        let b = GroupVec::zeros(GroupParams::new(11), 2);
        let _ = a.add(&b);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let params = GroupParams::new(7);
        let a = GroupVec::zeros(params, 2);
        let b = GroupVec::zeros(params, 3);
        let _ = a.add(&b);
    }

    #[test]
    fn from_reduced_matches_from_values_on_reduced_input() {
        let params = GroupParams::new(1000);
        let raw = vec![0u64, 1, 999, 500];
        assert_eq!(
            GroupVec::from_reduced(params, raw.clone()),
            GroupVec::from_values(params, raw)
        );
    }

    #[test]
    fn add_assign_slice_matches_add_assign() {
        let params = GroupParams::new(97);
        let mut a = GroupVec::from_values(params, vec![10, 96, 0]);
        let mut b = a.clone();
        let other = GroupVec::from_values(params, vec![90, 1, 96]);
        a.add_assign(&other);
        b.add_assign_slice(other.values());
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn add_assign_slice_length_mismatch_panics() {
        let params = GroupParams::new(7);
        let mut a = GroupVec::zeros(params, 2);
        a.add_assign_slice(&[1, 2, 3]);
    }

    #[test]
    fn byte_len_accounting() {
        let v = GroupVec::zeros(GroupParams::z2_32(), 100);
        assert_eq!(v.byte_len(), 800);
    }
}
