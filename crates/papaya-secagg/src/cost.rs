//! Host↔TEE boundary cost model (Figure 6).
//!
//! Transferring data across the enclave boundary is expensive: the paper
//! benchmarks ~650 ms to move 100 clients × 20 MB into the TEE (naive
//! aggregation) and extrapolates linearly in the aggregation goal `K`.  The
//! asynchronous SecAgg design moves only a constant ~16-byte seed (plus the
//! key-exchange completion) per client and one model-sized unmask vector per
//! buffer, i.e. `O(K + m)` instead of `O(K · m)`.
//!
//! [`TeeBoundaryCostModel`] converts byte counts into transfer times with a
//! bandwidth calibrated to the paper's measurement, so the reproduction of
//! Figure 6 reports the same order of magnitude.

/// Default per-client TSA payload in bytes: a 16-byte seed, AEAD nonce+tag
/// overhead (44 bytes), a 256-byte DH completing key, and an 8-byte index.
pub const DEFAULT_PER_CLIENT_TSA_BYTES: u64 = 16 + 44 + 256 + 8;

/// Bytes a session establishment sends into the TEE: the client's stable id
/// (8 bytes) and its 256-byte session public key.  Paid once per client per
/// epoch, not per update.
pub const SESSION_ESTABLISH_BYTES: u64 = 8 + 256;

/// Bytes one session-mode masked update contributes to the batched key
/// release: a [`crate::session::MaskRef`] (client id + ratchet counter).
pub const SESSION_MASK_REF_BYTES: u64 = 16;

/// Group exponentiations the **per-update** protocol performs per masked
/// update: the TSA's and the client's key generations plus both shared-secret
/// derivations.
pub const PER_UPDATE_EXPONENTIATIONS: u64 = 4;

/// Group exponentiations a session establishment costs: the client's key
/// generation and both shared-secret derivations.  (The TSA's epoch key
/// generation is paid once per epoch, see
/// [`session_exponentiations`].)
pub const SESSION_ESTABLISH_EXPONENTIATIONS: u64 = 3;

/// Total group exponentiations for `updates` masked updates under the
/// per-update protocol: `4·K`, the dominant cost the session cache removes.
pub fn per_update_exponentiations(updates: u64) -> u64 {
    PER_UPDATE_EXPONENTIATIONS * updates
}

/// Total group exponentiations under the session cache: `3·C` for `C`
/// distinct clients plus one TSA epoch key generation per epoch — zero per
/// resumed participation, however many updates those clients contribute.
pub fn session_exponentiations(clients: u64, epochs: u64) -> u64 {
    SESSION_ESTABLISH_EXPONENTIATIONS * clients + epochs
}

/// Host→TEE bytes for `updates` masked updates under the per-update
/// protocol (excluding the model-sized unmask, identical in both modes).
pub fn per_update_tsa_bytes(updates: u64) -> u64 {
    updates * DEFAULT_PER_CLIENT_TSA_BYTES
}

/// Host→TEE bytes under the session cache: one establishment per client
/// plus one 16-byte mask reference per update (excluding the model-sized
/// unmask, identical in both modes).
pub fn session_tsa_bytes(clients: u64, updates: u64) -> u64 {
    clients * SESSION_ESTABLISH_BYTES + updates * SESSION_MASK_REF_BYTES
}

/// Converts boundary byte counts into transfer time.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TeeBoundaryCostModel {
    /// Sustained bytes/second across the enclave boundary.
    pub bytes_per_second: f64,
    /// Fixed per-message overhead (enclave transition cost) in seconds.
    pub per_message_overhead_s: f64,
}

impl Default for TeeBoundaryCostModel {
    fn default() -> Self {
        // Calibration: naive TSA with K = 100 clients and a 20 MB model takes
        // ~650 ms (Figure 6), i.e. ~2 GB / 0.65 s ≈ 3.08 GB/s once per-message
        // overheads (100 × 0.1 ms) are subtracted.
        TeeBoundaryCostModel {
            bytes_per_second: 100.0 * 20.0e6 / 0.64,
            per_message_overhead_s: 1.0e-5,
        }
    }
}

impl TeeBoundaryCostModel {
    /// Bytes crossing into the TEE under **naive** aggregation: every client's
    /// full model update.
    pub fn naive_bytes(aggregation_goal: usize, model_bytes: u64) -> u64 {
        aggregation_goal as u64 * model_bytes
    }

    /// Bytes crossing the TEE boundary under **AsyncSecAgg**: a constant-size
    /// payload per client plus one model-sized unmask vector out per buffer.
    pub fn async_secagg_bytes(aggregation_goal: usize, model_bytes: u64) -> u64 {
        aggregation_goal as u64 * DEFAULT_PER_CLIENT_TSA_BYTES + model_bytes
    }

    /// Transfer time for `bytes` split across `messages` boundary crossings.
    pub fn transfer_time_s(&self, bytes: u64, messages: usize) -> f64 {
        bytes as f64 / self.bytes_per_second + messages as f64 * self.per_message_overhead_s
    }

    /// Data-transfer time of naive TEE aggregation for a buffer of `k`
    /// clients and a model of `model_bytes` bytes.
    pub fn naive_time_s(&self, k: usize, model_bytes: u64) -> f64 {
        self.transfer_time_s(Self::naive_bytes(k, model_bytes), k)
    }

    /// Data-transfer time of AsyncSecAgg for the same buffer.
    pub fn async_secagg_time_s(&self, k: usize, model_bytes: u64) -> f64 {
        self.transfer_time_s(Self::async_secagg_bytes(k, model_bytes), k + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MODEL_20MB: u64 = 20_000_000;

    #[test]
    fn naive_bytes_scale_linearly_with_k() {
        assert_eq!(
            TeeBoundaryCostModel::naive_bytes(10, MODEL_20MB) * 10,
            TeeBoundaryCostModel::naive_bytes(100, MODEL_20MB)
        );
    }

    #[test]
    fn async_bytes_are_nearly_constant_in_k() {
        let b10 = TeeBoundaryCostModel::async_secagg_bytes(10, MODEL_20MB);
        let b1000 = TeeBoundaryCostModel::async_secagg_bytes(1000, MODEL_20MB);
        // Going from K=10 to K=1000 should cost far less than 2x, because the
        // model-sized unmask dominates.
        assert!((b1000 as f64) < 1.1 * b10 as f64);
    }

    #[test]
    fn calibration_matches_paper_at_k_100() {
        // Paper: naive TSA, K = 100, 20 MB model → ~650 ms.
        let model = TeeBoundaryCostModel::default();
        let t = model.naive_time_s(100, MODEL_20MB);
        assert!((0.55..0.75).contains(&t), "naive time {t}");
    }

    #[test]
    fn naive_k_1000_is_seconds_async_is_milliseconds() {
        // Paper: at K = 1000 the naive design needs ~6500 ms while
        // AsyncSecAgg stays roughly constant (~the single-model transfer).
        let model = TeeBoundaryCostModel::default();
        let naive = model.naive_time_s(1000, MODEL_20MB);
        let ours = model.async_secagg_time_s(1000, MODEL_20MB);
        assert!(naive > 5.0, "naive {naive}");
        assert!(ours < 0.2, "async {ours}");
        assert!(naive / ours > 50.0);
    }

    #[test]
    fn session_cache_amortizes_exponentiations_across_participations() {
        // 600 clients contributing 10 updates each: per-update mode pays
        // 4 exponentiations per update; the session cache pays 3 per client
        // once (plus one epoch keygen) — an ~8x reduction here, growing
        // without bound in updates-per-client.
        let clients = 600u64;
        let updates = clients * 10;
        let legacy = per_update_exponentiations(updates);
        let cached = session_exponentiations(clients, 1);
        assert_eq!(legacy, 24_000);
        assert_eq!(cached, 1_801);
        assert!(legacy / cached >= 13);
        // With a single participation per client the cache still wins
        // (3 exponentiations vs 4, amortizing the one epoch keygen).
        assert!(session_exponentiations(clients, 1) < per_update_exponentiations(clients));
    }

    #[test]
    fn session_tsa_bytes_beat_per_update_bytes_once_clients_repeat() {
        let clients = 100u64;
        // At one update per client the establishment (264 B) already beats
        // the completing message (324 B).
        assert!(session_tsa_bytes(clients, clients) < per_update_tsa_bytes(clients));
        // At many updates per client the gap approaches 324/16 ≈ 20x.
        let updates = clients * 50;
        let ratio =
            per_update_tsa_bytes(updates) as f64 / session_tsa_bytes(clients, updates) as f64;
        assert!(ratio > 15.0, "ratio {ratio}");
    }

    #[test]
    fn session_constants_match_wire_sizes() {
        assert_eq!(SESSION_ESTABLISH_BYTES, 264);
        assert_eq!(
            SESSION_MASK_REF_BYTES,
            crate::session::MaskRef::BYTE_LEN as u64
        );
    }

    #[test]
    fn async_advantage_grows_with_k() {
        let model = TeeBoundaryCostModel::default();
        let ratio_at =
            |k: usize| model.naive_time_s(k, MODEL_20MB) / model.async_secagg_time_s(k, MODEL_20MB);
        assert!(ratio_at(10) < ratio_at(100));
        assert!(ratio_at(100) < ratio_at(1000));
    }
}
