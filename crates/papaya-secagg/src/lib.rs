//! Asynchronous Secure Aggregation (Section 5 and Appendices A–D of PAPAYA).
//!
//! In an honest-but-curious threat model, secure aggregation lets the server
//! learn only the *sum* of client model updates, never an individual update.
//! SMPC-based protocols need synchronized cohorts, which is incompatible with
//! asynchronous FL; PAPAYA instead relies on a Trusted Execution Environment
//! hosting a **Trusted Secure Aggregator (TSA)**:
//!
//! 1. the TSA prepares Diffie–Hellman *initial messages* and attestation
//!    quotes in advance;
//! 2. a participating client validates the attestation (and the verifiable
//!    log entry for the trusted binary), completes the key exchange, samples
//!    a random seed, masks its update with the PRNG expansion of that seed,
//!    sends the *masked update* to the untrusted aggregator, and the
//!    *encrypted seed* to the TSA;
//! 3. the untrusted aggregator incrementally sums masked updates;
//! 4. once the aggregation goal is reached, the TSA — which summed the masks
//!    regenerated from the seeds — releases the aggregated unmask (only if at
//!    least `t` clients contributed);
//! 5. the aggregator subtracts the unmask and obtains the exact sum.
//!
//! Only the 16-byte seeds and the single unmask vector cross the host↔TEE
//! boundary, so the traffic is `O(K + m)` rather than the naive `O(K·m)`
//! (Figure 6); [`cost`] models that boundary traffic.
//!
//! The TEE itself is simulated: [`tsa::Tsa`] is an in-process object whose
//! "attestation" is an HMAC signature from a simulated hardware key.  The
//! protocol logic, message flow, and failure handling are faithful to the
//! paper's Appendix B/C.
//!
//! # Example: end-to-end aggregation of three clients
//!
//! ```
//! use papaya_secagg::fixed_point::FixedPointCodec;
//! use papaya_secagg::group::GroupParams;
//! use papaya_secagg::{SecAggClient, SecAggConfig, Tsa, UntrustedAggregator};
//! use papaya_crypto::chacha20::ChaCha20Rng;
//!
//! let config = SecAggConfig::insecure_fast(4, 3); // 4-element vectors, threshold 3
//! let mut tsa = Tsa::new(&config, [7u8; 32]);
//! let publication = tsa.publication();
//! let mut rng = ChaCha20Rng::from_seed([1u8; 32]);
//! let initial = tsa.prepare_initial_messages(3, &mut rng);
//!
//! let mut aggregator = UntrustedAggregator::new(&config);
//! for (i, init) in initial.into_iter().enumerate() {
//!     let update = vec![0.5 * (i as f32 + 1.0); 4];
//!     let msg = SecAggClient::participate(&update, &init, &publication, &config, &mut rng)
//!         .expect("attestation verifies");
//!     aggregator.submit(msg, &mut tsa).expect("accepted");
//! }
//! let sum = aggregator.finalize(&mut tsa).expect("threshold met");
//! assert!((sum[0] - 3.0).abs() < 1e-3); // 0.5 + 1.0 + 1.5
//! ```

pub mod attestation;
pub mod client;
pub mod cost;
pub mod fixed_point;
pub mod group;
pub mod mask;
pub mod protocol;
pub mod server;
pub mod session;
pub mod tsa;

pub use attestation::{AttestationQuote, TrustedBinary, TsaPublication};
pub use client::{ClientError, SecAggClient};
pub use cost::TeeBoundaryCostModel;
pub use fixed_point::FixedPointCodec;
pub use group::{GroupParams, GroupVec};
pub use protocol::{ClientUploadMessage, KeyExchangeInitialMessage, SecAggConfig};
pub use server::{AggregatorError, UntrustedAggregator};
pub use session::{
    client_handshake, ratchet_seed, HandshakePlan, MaskPlan, MaskPlanKind, MaskRef, MaskScratch,
    PrecomputedMask, SessionHandshake, SessionInitMessage,
};
pub use tsa::{Tsa, TsaError};
