//! The Trusted Secure Aggregator (the party inside the TEE).
//!
//! The TSA's job per aggregation round: hold the private halves of the
//! pre-generated Diffie–Hellman exchanges, recover each participating
//! client's mask seed, regenerate and sum the masks, and release the
//! aggregated unmask only once at least `t` clients have been processed
//! (Figure 16, steps 1, 6, 7).
//!
//! All traffic in and out of the TSA is metered by a [`BoundaryStats`]
//! counter so Figure 6 can be reproduced.

use crate::attestation::{publish_binary, AttestationQuote, TsaPublication};
use crate::group::GroupVec;
use crate::mask::{expand_mask, expand_mask_into, MaskSeed, SEED_LEN};
use crate::protocol::{CompletingMessage, KeyExchangeInitialMessage, SecAggConfig};
use crate::session::{ratchet_seed, MaskRef, SessionInitMessage};
use papaya_crypto::aead::{open, AeadKey};
use papaya_crypto::chacha20::ChaCha20Rng;
use papaya_crypto::dh::{DhPrivateKey, DhPublicKey, SharedSecret};
use papaya_crypto::hmac::hmac_sha256;
use papaya_crypto::merkle::MerkleLog;
use std::collections::{BTreeMap, BTreeSet};

/// Counters of data crossing the host↔TEE boundary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BoundaryStats {
    /// Bytes transferred into the enclave.
    pub bytes_in: u64,
    /// Bytes transferred out of the enclave.
    pub bytes_out: u64,
    /// Number of messages into the enclave.
    pub messages_in: u64,
    /// Number of messages out of the enclave.
    pub messages_out: u64,
}

/// Errors returned by the TSA.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TsaError {
    /// The completing message references an initial message that was never
    /// issued.
    UnknownIndex(usize),
    /// The referenced initial message has already been completed; the TSA
    /// processes at most one completion per initial message.
    IndexAlreadyUsed(usize),
    /// The encrypted seed failed to authenticate/decrypt (tampering or wrong
    /// key).
    SeedDecryptionFailed,
    /// The encrypted seed has an unexpected length after decryption.
    MalformedSeed,
    /// Fewer than `threshold` clients have been processed, so the unmask
    /// cannot be released.
    ThresholdNotMet {
        /// Clients processed so far in this round.
        processed: usize,
        /// Required threshold.
        required: usize,
    },
    /// The round was already finalized; the TSA ignores further requests
    /// until a new round is started.
    RoundFinalized,
    /// A batched release referenced a client with no established session in
    /// the current epoch.
    UnknownSession(u64),
    /// A batched release referenced a ratchet counter at or below the
    /// session's monotone floor — a replay or a revoked participation.
    StaleSessionCounter {
        /// The session owner's client id.
        client_id: u64,
        /// The rejected counter.
        counter: u64,
    },
}

impl std::fmt::Display for TsaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TsaError::UnknownIndex(i) => write!(f, "unknown key-exchange index {i}"),
            TsaError::IndexAlreadyUsed(i) => write!(f, "key-exchange index {i} already completed"),
            TsaError::SeedDecryptionFailed => write!(f, "seed decryption failed"),
            TsaError::MalformedSeed => write!(f, "decrypted seed has unexpected length"),
            TsaError::ThresholdNotMet {
                processed,
                required,
            } => write!(
                f,
                "only {processed} of required {required} clients processed"
            ),
            TsaError::RoundFinalized => write!(f, "aggregation round already finalized"),
            TsaError::UnknownSession(id) => write!(f, "no established session for client {id}"),
            TsaError::StaleSessionCounter { client_id, counter } => write!(
                f,
                "stale ratchet counter {counter} for client {client_id}'s session"
            ),
        }
    }
}

impl std::error::Error for TsaError {}

/// The Trusted Secure Aggregator.
#[derive(Debug)]
pub struct Tsa {
    config: SecAggConfig,
    hardware_key: [u8; 32],
    /// Private halves of issued key exchanges, keyed by index.
    private_keys: BTreeMap<usize, DhPrivateKey>,
    /// Indices whose completion has already been processed (ever).
    used_indices: BTreeSet<usize>,
    next_index: usize,
    /// The verifiable log recording released trusted binaries.
    log: MerkleLog,
    /// Running sum of regenerated masks for the current round.
    mask_sum: GroupVec,
    processed: usize,
    finalized: bool,
    boundary: BoundaryStats,
    /// Session epoch; bumped on every invalidation so cached client state
    /// can never complete against a stale TSA key.
    epoch: u64,
    /// The TSA's private Diffie–Hellman key for the current epoch.
    epoch_key: Option<DhPrivateKey>,
    /// Cached epoch offer (public key + quote), built at most once per epoch.
    epoch_init: Option<SessionInitMessage>,
    /// Established sessions, keyed by client id.
    sessions: BTreeMap<u64, TsaSession>,
    /// Reusable mask-expansion buffer for batched releases.
    scratch: Vec<u64>,
}

/// Per-client session state inside the TSA: the shared secret and the
/// monotone ratchet-counter floor that makes every seed single-use.
#[derive(Debug)]
struct TsaSession {
    secret: SharedSecret,
    /// Smallest counter the TSA will still accept for this session.
    next_counter: u64,
    /// Individually revoked counters at or above the floor.  A revocation
    /// cannot simply advance the floor: lower counters of the same session
    /// may still be pending in the open buffer, and burning them would
    /// poison the batch release.  The set is pruned as the floor passes it.
    revoked: BTreeSet<u64>,
}

impl Tsa {
    /// Boots a TSA "enclave" for the given configuration; `hardware_key` is
    /// the simulated hardware signing key whose public counterpart is the
    /// verification key in [`TsaPublication`].
    pub fn new(config: &SecAggConfig, hardware_key: [u8; 32]) -> Self {
        let mut log = MerkleLog::new();
        publish_binary(&mut log, &config.trusted_binary);
        Tsa {
            config: config.clone(),
            hardware_key,
            private_keys: BTreeMap::new(),
            used_indices: BTreeSet::new(),
            next_index: 0,
            log,
            mask_sum: GroupVec::zeros(config.group_params(), config.vector_len),
            processed: 0,
            finalized: false,
            boundary: BoundaryStats::default(),
            epoch: 0,
            epoch_key: None,
            epoch_init: None,
            sessions: BTreeMap::new(),
            scratch: Vec::new(),
        }
    }

    /// The public material clients use to validate this TSA: expected binary
    /// measurement, parameter hash, verifiable-log snapshot and inclusion
    /// proof, and the quote verification key.
    pub fn publication(&self) -> TsaPublication {
        let binary = &self.config.trusted_binary;
        let record = binary.log_record();
        let index = (0..self.log.len())
            .find(|&i| self.log.get(i) == Some(record.as_slice()))
            // papaya-lint: allow(panic-hygiene) -- the constructor records the binary before any publication can be requested
            .expect("binary recorded at construction");
        TsaPublication {
            expected_measurement: binary.measurement(),
            expected_params_hash: self.config.params_hash(),
            log_root: self.log.root(),
            log_size: self.log.len(),
            log_index: index,
            log_record: record,
            inclusion_proof: self
                .log
                .inclusion_proof(index)
                // papaya-lint: allow(panic-hygiene) -- `index` was found in the log two statements above; a missing proof is an internal invariant breach
                .expect("inclusion proof for recorded binary"),
            hardware_key: self.hardware_key,
        }
    }

    /// Records a new trusted binary release in the verifiable log (the
    /// Appendix C.2 update flow).  Returns the new log size.
    ///
    /// A binary change is an attestation change, so every cached session is
    /// invalidated: clients must re-verify the new measurement before any
    /// further masking.
    pub fn publish_new_binary(&mut self, binary: &crate::attestation::TrustedBinary) -> usize {
        publish_binary(&mut self.log, binary);
        self.invalidate_sessions();
        self.log.len()
    }

    /// Read access to the verifiable log (for auditors).
    pub fn verifiable_log(&self) -> &MerkleLog {
        &self.log
    }

    /// Prepares `n` Diffie–Hellman initial messages with attestation quotes
    /// (Figure 16 step 1).  Each may be completed by at most one client.
    pub fn prepare_initial_messages(
        &mut self,
        n: usize,
        rng: &mut ChaCha20Rng,
    ) -> Vec<KeyExchangeInitialMessage> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let index = self.next_index;
            self.next_index += 1;
            let private = DhPrivateKey::generate(&self.config.dh_group, rng);
            let public = private.public_key();
            let payload = public.to_bytes();
            let quote = AttestationQuote::sign(
                &self.hardware_key,
                self.config.trusted_binary.measurement(),
                self.config.params_hash(),
                &payload,
            );
            self.boundary.bytes_out += payload.len() as u64 + 128; // key + quote
            self.boundary.messages_out += 1;
            self.private_keys.insert(index, private);
            out.push(KeyExchangeInitialMessage {
                index,
                tsa_public: public,
                quote,
            });
        }
        out
    }

    /// Processes one client's completing message (Figure 16 step 6): derives
    /// the shared secret, decrypts the seed, regenerates the mask, and adds
    /// it to the running sum.
    ///
    /// # Errors
    ///
    /// See [`TsaError`].
    pub fn process_client(&mut self, completing: &CompletingMessage) -> Result<(), TsaError> {
        if self.finalized {
            return Err(TsaError::RoundFinalized);
        }
        self.boundary.bytes_in += completing.byte_len() as u64;
        self.boundary.messages_in += 1;

        if self.used_indices.contains(&completing.index) {
            return Err(TsaError::IndexAlreadyUsed(completing.index));
        }
        let private = self
            .private_keys
            .get(&completing.index)
            .ok_or(TsaError::UnknownIndex(completing.index))?;
        let shared = private.shared_secret(&completing.client_public);
        let key = AeadKey::from_shared_secret(&shared);
        let ad = seed_associated_data(completing.index);
        let plaintext = open(&key, &ad, &completing.encrypted_seed)
            .map_err(|_| TsaError::SeedDecryptionFailed)?;
        if plaintext.len() != SEED_LEN {
            return Err(TsaError::MalformedSeed);
        }
        let mut seed: MaskSeed = [0u8; SEED_LEN];
        seed.copy_from_slice(&plaintext);
        let mask = expand_mask(&seed, self.config.group_params(), self.config.vector_len);
        self.mask_sum.add_assign(&mask);
        self.processed += 1;
        // "After that, the trusted party will not process any further
        // completing messages to i'th initial message."
        self.used_indices.insert(completing.index);
        self.private_keys.remove(&completing.index);
        Ok(())
    }

    /// Number of clients processed in the current round.
    pub fn processed_clients(&self) -> usize {
        self.processed
    }

    /// Discards the private half of a key exchange whose client will never
    /// complete it (the host turned the upload away before forwarding the
    /// seed).  Without this, every abandoned exchange would pin its private
    /// key forever.  The index stays single-use: a completing message for a
    /// revoked index is rejected like any replay.  Returns whether a
    /// pending exchange was actually revoked.
    pub fn revoke_unused_exchange(&mut self, index: usize) -> bool {
        // The revocation notice is a constant-size host→TEE control message.
        self.boundary.bytes_in += 8;
        self.boundary.messages_in += 1;
        let revoked = self.private_keys.remove(&index).is_some();
        if revoked {
            self.used_indices.insert(index);
        }
        revoked
    }

    /// Number of key exchanges prepared but not yet completed or revoked
    /// (the TSA's only per-client state).
    pub fn pending_exchanges(&self) -> usize {
        self.private_keys.len()
    }

    /// Releases the aggregated unmask (Figure 16 step 7) if at least
    /// `threshold` clients have been processed, and finalizes the round.
    ///
    /// # Errors
    ///
    /// Returns [`TsaError::ThresholdNotMet`] below threshold and
    /// [`TsaError::RoundFinalized`] if already finalized.
    pub fn generate_unmask(&mut self) -> Result<GroupVec, TsaError> {
        if self.finalized {
            return Err(TsaError::RoundFinalized);
        }
        if self.processed < self.config.threshold {
            return Err(TsaError::ThresholdNotMet {
                processed: self.processed,
                required: self.config.threshold,
            });
        }
        self.finalized = true;
        self.boundary.bytes_out += self.mask_sum.byte_len() as u64;
        self.boundary.messages_out += 1;
        Ok(self.mask_sum.clone())
    }

    /// Starts a new aggregation round (new buffer in FedBuff): resets the
    /// running mask sum and the processed counter.  Key-exchange indices stay
    /// single-use across rounds.
    pub fn start_new_round(&mut self) {
        self.mask_sum = GroupVec::zeros(self.config.group_params(), self.config.vector_len);
        self.processed = 0;
        self.finalized = false;
    }

    // -----------------------------------------------------------------
    // Session-cached key exchange (see `crate::session`)
    // -----------------------------------------------------------------

    /// The current session epoch.  Bumped on every invalidation; cached
    /// client state from an older epoch is useless against the new key.
    pub fn session_epoch(&self) -> u64 {
        self.epoch
    }

    /// Returns the TSA's session offer for the current epoch: its epoch
    /// public key under an attestation quote.  The key is generated (and the
    /// offer metered across the boundary) at most once per epoch — this is
    /// the amortization that replaces the per-update initial message.
    pub fn session_init(&mut self) -> SessionInitMessage {
        if self.epoch_init.is_none() {
            // The epoch key is derived from the hardware key and the epoch
            // number, so it never touches the shared protocol RNG: session
            // establishment consumes no randomness whose order could differ
            // between sequential and speculative execution.
            let mut info = b"papaya/epoch-key/".to_vec();
            info.extend_from_slice(&self.epoch.to_be_bytes());
            let seed = hmac_sha256(&self.hardware_key, &info);
            let mut rng = ChaCha20Rng::from_seed(seed);
            let private = DhPrivateKey::generate(&self.config.dh_group, &mut rng);
            let public = private.public_key();
            let payload = public.to_bytes();
            let quote = AttestationQuote::sign(
                &self.hardware_key,
                self.config.trusted_binary.measurement(),
                self.config.params_hash(),
                &payload,
            );
            self.boundary.bytes_out += payload.len() as u64 + 128; // key + quote
            self.boundary.messages_out += 1;
            self.epoch_key = Some(private);
            self.epoch_init = Some(SessionInitMessage {
                epoch: self.epoch,
                tsa_public: public,
                quote,
            });
        }
        // papaya-lint: allow(panic-hygiene) -- the branch above populates `epoch_init` whenever it was empty
        self.epoch_init.clone().expect("built above")
    }

    /// Establishes (or refreshes) a client's session: the host forwards the
    /// client's session public key, the TSA derives the shared secret.  The
    /// ratchet-counter floor of an existing session is preserved so a
    /// re-establishment can never resurrect an already-used or revoked
    /// counter.
    pub fn establish_session(&mut self, client_id: u64, client_public: &DhPublicKey) {
        // client id + public key cross the boundary once per session.
        self.boundary.bytes_in += 8 + client_public.to_bytes().len() as u64;
        self.boundary.messages_in += 1;
        if self.epoch_init.is_none() {
            self.session_init();
        }
        let secret = self
            .epoch_key
            .as_ref()
            // papaya-lint: allow(panic-hygiene) -- session_init was just run if the epoch key was absent; absence here is an internal invariant breach
            .expect("epoch key exists after session_init")
            .shared_secret(client_public);
        self.sessions
            .entry(client_id)
            .and_modify(|s| s.secret = secret)
            .or_insert(TsaSession {
                secret,
                next_counter: 0,
                revoked: BTreeSet::new(),
            });
    }

    /// Number of sessions established in the current epoch.
    pub fn active_sessions(&self) -> usize {
        self.sessions.len()
    }

    /// Releases the aggregated unmask for one closing buffer in a single
    /// round-trip: the host sends the batch of [`MaskRef`]s (16 bytes per
    /// update) and the TSA regenerates and sums every mask in one pass.
    ///
    /// The call is atomic: all refs are validated against the per-session
    /// counter floors (including duplicates *within* the batch) before any
    /// state changes; on error no floor moves and nothing is released.
    /// Unlike the per-update path there is no round state to finalize —
    /// the batch itself delimits the buffer.
    ///
    /// # Errors
    ///
    /// [`TsaError::ThresholdNotMet`] when the batch is smaller than the
    /// threshold, [`TsaError::UnknownSession`] and
    /// [`TsaError::StaleSessionCounter`] on invalid refs.
    pub fn release_batch(&mut self, refs: &[MaskRef]) -> Result<GroupVec, TsaError> {
        // The batch crosses the boundary as one message: the refs plus a
        // length header.
        self.boundary.bytes_in += (refs.len() * MaskRef::BYTE_LEN) as u64 + 8;
        self.boundary.messages_in += 1;
        if refs.len() < self.config.threshold {
            return Err(TsaError::ThresholdNotMet {
                processed: refs.len(),
                required: self.config.threshold,
            });
        }
        // Validation pass: every ref must be at or above its session's
        // floor, and refs within the batch must not collide.  Ordered map:
        // the floor-advance loop below iterates it, and enclave state
        // transitions must not depend on hash order.
        let mut floors: BTreeMap<u64, u64> = BTreeMap::new();
        for r in refs {
            let session = self
                .sessions
                .get(&r.client_id)
                .ok_or(TsaError::UnknownSession(r.client_id))?;
            let floor = floors.entry(r.client_id).or_insert(session.next_counter);
            if r.counter < *floor || session.revoked.contains(&r.counter) {
                return Err(TsaError::StaleSessionCounter {
                    client_id: r.client_id,
                    counter: r.counter,
                });
            }
            *floor = r.counter + 1;
        }
        // Release pass: expand every mask through one reusable buffer.
        let params = self.config.group_params();
        let mut sum = GroupVec::zeros(params, self.config.vector_len);
        let mut scratch = std::mem::take(&mut self.scratch);
        for r in refs {
            // papaya-lint: allow(panic-hygiene) -- every ref passed the validation pass above, which requires an established session
            let secret = self.sessions.get(&r.client_id).expect("validated").secret;
            let seed = ratchet_seed(&secret, r.counter);
            expand_mask_into(&seed, params, self.config.vector_len, &mut scratch);
            sum.add_assign_slice(&scratch);
        }
        self.scratch = scratch;
        for (client_id, floor) in floors {
            // papaya-lint: allow(panic-hygiene) -- `floors` keys were validated against established sessions above
            let session = self.sessions.get_mut(&client_id).expect("validated");
            session.next_counter = floor;
            // Revocations the floor has now passed can never match again.
            session.revoked = session.revoked.split_off(&floor);
        }
        self.boundary.bytes_out += sum.byte_len() as u64;
        self.boundary.messages_out += 1;
        Ok(sum)
    }

    /// Burns a ratchet counter whose masked update the host turned away
    /// before any release (the session-mode analogue of
    /// [`Tsa::revoke_unused_exchange`]): the counter is individually
    /// revoked so its seed can never be released, while *lower* counters of
    /// the same session still pending in the open buffer stay valid.
    /// Returns whether the counter was still live.
    pub fn revoke_session_counter(&mut self, client_id: u64, counter: u64) -> bool {
        self.boundary.bytes_in += MaskRef::BYTE_LEN as u64;
        self.boundary.messages_in += 1;
        match self.sessions.get_mut(&client_id) {
            Some(s) if counter >= s.next_counter => s.revoked.insert(counter),
            _ => false,
        }
    }

    /// Invalidates every cached session and bumps the epoch: the next
    /// [`Tsa::session_init`] offers a fresh key, and every client must
    /// re-handshake.  Called on attestation change
    /// ([`Tsa::publish_new_binary`]) and by the host on aggregator
    /// crash/reset.  Unmetered: a crash tears the enclave down with it, so
    /// no message crosses the boundary.
    pub fn invalidate_sessions(&mut self) {
        self.sessions.clear();
        self.epoch += 1;
        self.epoch_key = None;
        self.epoch_init = None;
    }

    /// Cumulative host↔TEE boundary traffic.
    pub fn boundary_stats(&self) -> BoundaryStats {
        self.boundary
    }

    /// The configuration this TSA was booted with.
    pub fn config(&self) -> &SecAggConfig {
        &self.config
    }
}

/// Associated data binding an encrypted seed to its key-exchange index.
pub fn seed_associated_data(index: usize) -> Vec<u8> {
    let mut ad = b"papaya/seed/".to_vec();
    ad.extend_from_slice(&(index as u64).to_be_bytes());
    ad
}

/// A naive TEE aggregator that ships every full client update across the
/// enclave boundary (the `O(K·m)` strawman of Figure 6).  Used only for cost
/// comparison.
#[derive(Debug)]
pub struct NaiveTeeAggregator {
    sum: Vec<f64>,
    clients: usize,
    boundary: BoundaryStats,
}

impl NaiveTeeAggregator {
    /// Creates a naive aggregator for updates of the given length.
    pub fn new(vector_len: usize) -> Self {
        NaiveTeeAggregator {
            sum: vec![0.0; vector_len],
            clients: 0,
            boundary: BoundaryStats::default(),
        }
    }

    /// Sends a full update into the enclave and accumulates it.
    ///
    /// # Panics
    ///
    /// Panics if the update length does not match.
    pub fn process_update(&mut self, update: &[f32]) {
        assert_eq!(update.len(), self.sum.len(), "length mismatch");
        self.boundary.bytes_in += (update.len() * 4) as u64;
        self.boundary.messages_in += 1;
        for (s, u) in self.sum.iter_mut().zip(update.iter()) {
            *s += *u as f64;
        }
        self.clients += 1;
    }

    /// Returns the aggregated sum, crossing the boundary outward once.
    pub fn finalize(&mut self) -> Vec<f32> {
        self.boundary.bytes_out += (self.sum.len() * 4) as u64;
        self.boundary.messages_out += 1;
        self.sum.iter().map(|&v| v as f32).collect()
    }

    /// Number of updates aggregated.
    pub fn clients(&self) -> usize {
        self.clients
    }

    /// Cumulative boundary traffic.
    pub fn boundary_stats(&self) -> BoundaryStats {
        self.boundary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::SecAggClient;

    fn setup(vector_len: usize, threshold: usize) -> (Tsa, SecAggConfig, ChaCha20Rng) {
        let config = SecAggConfig::insecure_fast(vector_len, threshold);
        let tsa = Tsa::new(&config, [0x11u8; 32]);
        let rng = ChaCha20Rng::from_seed([3u8; 32]);
        (tsa, config, rng)
    }

    #[test]
    fn initial_messages_have_unique_indices_and_valid_quotes() {
        let (mut tsa, config, mut rng) = setup(4, 2);
        let publication = tsa.publication();
        let msgs = tsa.prepare_initial_messages(5, &mut rng);
        let mut seen = std::collections::HashSet::new();
        for m in &msgs {
            assert!(seen.insert(m.index));
            assert!(crate::attestation::verify_quote(
                &publication,
                &m.quote,
                &m.tsa_public.to_bytes()
            )
            .is_ok());
        }
        assert_eq!(config.threshold, 2);
    }

    #[test]
    fn unmask_requires_threshold() {
        let (mut tsa, config, mut rng) = setup(4, 3);
        let publication = tsa.publication();
        let msgs = tsa.prepare_initial_messages(3, &mut rng);
        // Only two clients participate.
        for init in msgs.iter().take(2) {
            let upload =
                SecAggClient::participate(&[1.0; 4], init, &publication, &config, &mut rng)
                    .unwrap();
            tsa.process_client(&upload.completing).unwrap();
        }
        assert_eq!(
            tsa.generate_unmask(),
            Err(TsaError::ThresholdNotMet {
                processed: 2,
                required: 3
            })
        );
    }

    #[test]
    fn index_reuse_rejected() {
        let (mut tsa, config, mut rng) = setup(4, 1);
        let publication = tsa.publication();
        let msgs = tsa.prepare_initial_messages(1, &mut rng);
        let upload =
            SecAggClient::participate(&[0.5; 4], &msgs[0], &publication, &config, &mut rng)
                .unwrap();
        tsa.process_client(&upload.completing).unwrap();
        let second =
            SecAggClient::participate(&[0.5; 4], &msgs[0], &publication, &config, &mut rng)
                .unwrap();
        assert_eq!(
            tsa.process_client(&second.completing),
            Err(TsaError::IndexAlreadyUsed(0))
        );
    }

    #[test]
    fn unknown_index_rejected() {
        let (mut tsa, config, mut rng) = setup(4, 1);
        let publication = tsa.publication();
        let msgs = tsa.prepare_initial_messages(1, &mut rng);
        let mut upload =
            SecAggClient::participate(&[0.5; 4], &msgs[0], &publication, &config, &mut rng)
                .unwrap();
        upload.completing.index = 99;
        assert_eq!(
            tsa.process_client(&upload.completing),
            Err(TsaError::UnknownIndex(99))
        );
    }

    #[test]
    fn revoked_exchange_frees_state_and_rejects_completion() {
        let (mut tsa, config, mut rng) = setup(4, 1);
        let publication = tsa.publication();
        let msgs = tsa.prepare_initial_messages(2, &mut rng);
        assert_eq!(tsa.pending_exchanges(), 2);
        assert!(tsa.revoke_unused_exchange(msgs[0].index));
        assert_eq!(tsa.pending_exchanges(), 1);
        // Revoking again (or revoking a completed/unknown index) is a no-op.
        assert!(!tsa.revoke_unused_exchange(msgs[0].index));
        assert!(!tsa.revoke_unused_exchange(999));
        // A completion for the revoked index is rejected like a replay.
        let upload =
            SecAggClient::participate(&[0.5; 4], &msgs[0], &publication, &config, &mut rng)
                .unwrap();
        assert_eq!(
            tsa.process_client(&upload.completing),
            Err(TsaError::IndexAlreadyUsed(msgs[0].index))
        );
        // The untouched exchange still works.
        let ok = SecAggClient::participate(&[0.5; 4], &msgs[1], &publication, &config, &mut rng)
            .unwrap();
        tsa.process_client(&ok.completing).unwrap();
        assert_eq!(tsa.pending_exchanges(), 0);
    }

    #[test]
    fn tampered_seed_rejected() {
        let (mut tsa, config, mut rng) = setup(4, 1);
        let publication = tsa.publication();
        let msgs = tsa.prepare_initial_messages(1, &mut rng);
        let mut upload =
            SecAggClient::participate(&[0.5; 4], &msgs[0], &publication, &config, &mut rng)
                .unwrap();
        let n = upload.completing.encrypted_seed.len();
        upload.completing.encrypted_seed[n / 2] ^= 1;
        assert_eq!(
            tsa.process_client(&upload.completing),
            Err(TsaError::SeedDecryptionFailed)
        );
    }

    #[test]
    fn finalized_round_ignores_further_messages() {
        let (mut tsa, config, mut rng) = setup(4, 1);
        let publication = tsa.publication();
        let msgs = tsa.prepare_initial_messages(2, &mut rng);
        let upload =
            SecAggClient::participate(&[0.5; 4], &msgs[0], &publication, &config, &mut rng)
                .unwrap();
        tsa.process_client(&upload.completing).unwrap();
        tsa.generate_unmask().unwrap();
        let late = SecAggClient::participate(&[0.5; 4], &msgs[1], &publication, &config, &mut rng)
            .unwrap();
        assert_eq!(
            tsa.process_client(&late.completing),
            Err(TsaError::RoundFinalized)
        );
        assert_eq!(tsa.generate_unmask(), Err(TsaError::RoundFinalized));
        // A new round accepts clients again.
        tsa.start_new_round();
        assert!(tsa.process_client(&late.completing).is_ok());
    }

    #[test]
    fn boundary_traffic_is_constant_per_client() {
        let (mut tsa, config, mut rng) = setup(1000, 1);
        let publication = tsa.publication();
        let msgs = tsa.prepare_initial_messages(3, &mut rng);
        let before = tsa.boundary_stats();
        let mut per_client = Vec::new();
        for init in &msgs {
            let upload =
                SecAggClient::participate(&[0.1; 1000], init, &publication, &config, &mut rng)
                    .unwrap();
            let b0 = tsa.boundary_stats().bytes_in;
            tsa.process_client(&upload.completing).unwrap();
            per_client.push(tsa.boundary_stats().bytes_in - b0);
        }
        // Inbound bytes per client are independent of the 1000-element model.
        assert!(per_client.iter().all(|&b| b == per_client[0]));
        assert!(per_client[0] < 1000);
        assert_eq!(before.bytes_in, 0);
    }

    #[test]
    fn naive_aggregator_sums_and_charges_full_model() {
        let mut naive = NaiveTeeAggregator::new(3);
        naive.process_update(&[1.0, 2.0, 3.0]);
        naive.process_update(&[0.5, 0.5, 0.5]);
        let sum = naive.finalize();
        assert_eq!(sum, vec![1.5, 2.5, 3.5]);
        let stats = naive.boundary_stats();
        assert_eq!(stats.bytes_in, 2 * 12);
        assert_eq!(stats.bytes_out, 12);
        assert_eq!(naive.clients(), 2);
    }

    mod sessions {
        use super::*;
        use crate::group::GroupVec;
        use crate::mask::expand_mask;
        use crate::session::{client_handshake, ratchet_seed, MaskRef};

        /// Establishes a session for `client_id` and returns its secret.
        fn establish(tsa: &mut Tsa, config: &SecAggConfig, client_id: u64) -> [u8; 32] {
            let publication = tsa.publication();
            let init = tsa.session_init();
            let handshake = client_handshake(
                &config.dh_group,
                &[client_id as u8 + 1; 32],
                &init,
                &publication,
            );
            tsa.establish_session(client_id, &handshake.client_public);
            handshake.secret
        }

        #[test]
        fn batched_release_sums_the_ratcheted_masks() {
            let (mut tsa, config, _) = setup(16, 2);
            let s1 = establish(&mut tsa, &config, 1);
            let s2 = establish(&mut tsa, &config, 2);
            assert_eq!(tsa.active_sessions(), 2);
            let refs = [
                MaskRef {
                    client_id: 1,
                    counter: 0,
                },
                MaskRef {
                    client_id: 2,
                    counter: 0,
                },
                MaskRef {
                    client_id: 1,
                    counter: 1,
                },
            ];
            let released = tsa.release_batch(&refs).unwrap();
            let params = config.group_params();
            let mut expected = GroupVec::zeros(params, 16);
            for (secret, counter) in [(s1, 0), (s2, 0), (s1, 1)] {
                expected.add_assign(&expand_mask(&ratchet_seed(&secret, counter), params, 16));
            }
            assert_eq!(released, expected);
        }

        #[test]
        fn batched_release_enforces_threshold() {
            let (mut tsa, config, _) = setup(8, 3);
            establish(&mut tsa, &config, 1);
            let refs = [
                MaskRef {
                    client_id: 1,
                    counter: 0,
                },
                MaskRef {
                    client_id: 1,
                    counter: 1,
                },
            ];
            assert_eq!(
                tsa.release_batch(&refs),
                Err(TsaError::ThresholdNotMet {
                    processed: 2,
                    required: 3
                })
            );
        }

        #[test]
        fn counters_are_single_use_across_batches_and_within_a_batch() {
            let (mut tsa, config, _) = setup(8, 1);
            establish(&mut tsa, &config, 7);
            // Duplicate inside one batch is caught by the validation pass.
            let dup = [
                MaskRef {
                    client_id: 7,
                    counter: 0,
                },
                MaskRef {
                    client_id: 7,
                    counter: 0,
                },
            ];
            assert_eq!(
                tsa.release_batch(&dup),
                Err(TsaError::StaleSessionCounter {
                    client_id: 7,
                    counter: 0
                })
            );
            // A released counter can never be released again.
            tsa.release_batch(&[MaskRef {
                client_id: 7,
                counter: 0,
            }])
            .unwrap();
            assert_eq!(
                tsa.release_batch(&[MaskRef {
                    client_id: 7,
                    counter: 0,
                }]),
                Err(TsaError::StaleSessionCounter {
                    client_id: 7,
                    counter: 0
                })
            );
            // Later counters still work.
            tsa.release_batch(&[MaskRef {
                client_id: 7,
                counter: 3,
            }])
            .unwrap();
        }

        #[test]
        fn failed_batch_moves_no_floor() {
            let (mut tsa, config, _) = setup(8, 1);
            establish(&mut tsa, &config, 1);
            // client 2 has no session, so the whole batch fails...
            let refs = [
                MaskRef {
                    client_id: 1,
                    counter: 0,
                },
                MaskRef {
                    client_id: 2,
                    counter: 0,
                },
            ];
            assert_eq!(tsa.release_batch(&refs), Err(TsaError::UnknownSession(2)));
            // ...and client 1's counter 0 is still live.
            tsa.release_batch(&[MaskRef {
                client_id: 1,
                counter: 0,
            }])
            .unwrap();
        }

        #[test]
        fn revoked_counter_is_never_released() {
            let (mut tsa, config, _) = setup(8, 1);
            establish(&mut tsa, &config, 4);
            assert!(tsa.revoke_session_counter(4, 0));
            // Revoking an already-burned or unknown counter is a no-op.
            assert!(!tsa.revoke_session_counter(4, 0));
            assert!(!tsa.revoke_session_counter(99, 0));
            assert_eq!(
                tsa.release_batch(&[MaskRef {
                    client_id: 4,
                    counter: 0,
                }]),
                Err(TsaError::StaleSessionCounter {
                    client_id: 4,
                    counter: 0
                })
            );
            tsa.release_batch(&[MaskRef {
                client_id: 4,
                counter: 1,
            }])
            .unwrap();
        }

        #[test]
        fn revoking_a_later_counter_keeps_earlier_pending_counters_live() {
            // Counter 0 sits in the open buffer when the client's *next*
            // participation (counter 1) is policy-rejected and revoked.  The
            // revocation must burn exactly counter 1: the buffer containing
            // counter 0 still has to release.
            let (mut tsa, config, _) = setup(8, 1);
            establish(&mut tsa, &config, 6);
            assert!(tsa.revoke_session_counter(6, 1));
            tsa.release_batch(&[MaskRef {
                client_id: 6,
                counter: 0,
            }])
            .unwrap();
            // The release moved the floor to 1; the revoked counter 1 stays
            // dead, and the revocation set is pruned once the floor passes.
            assert_eq!(
                tsa.release_batch(&[MaskRef {
                    client_id: 6,
                    counter: 1,
                }]),
                Err(TsaError::StaleSessionCounter {
                    client_id: 6,
                    counter: 1
                })
            );
            tsa.release_batch(&[MaskRef {
                client_id: 6,
                counter: 2,
            }])
            .unwrap();
        }

        #[test]
        fn invalidation_clears_sessions_and_bumps_the_epoch() {
            let (mut tsa, config, _) = setup(8, 1);
            establish(&mut tsa, &config, 1);
            let old_init = tsa.session_init();
            assert_eq!(old_init.epoch, 0);
            tsa.invalidate_sessions();
            assert_eq!(tsa.active_sessions(), 0);
            assert_eq!(tsa.session_epoch(), 1);
            assert_eq!(
                tsa.release_batch(&[MaskRef {
                    client_id: 1,
                    counter: 0,
                }]),
                Err(TsaError::UnknownSession(1))
            );
            // The new epoch offers a fresh key under a fresh quote.
            let new_init = tsa.session_init();
            assert_eq!(new_init.epoch, 1);
            assert_ne!(
                old_init.tsa_public.to_bytes(),
                new_init.tsa_public.to_bytes()
            );
        }

        #[test]
        fn publishing_a_new_binary_invalidates_sessions() {
            let (mut tsa, config, _) = setup(8, 1);
            establish(&mut tsa, &config, 1);
            tsa.publish_new_binary(&crate::attestation::TrustedBinary::new(
                "tsa-v2",
                b"new code".to_vec(),
            ));
            assert_eq!(tsa.active_sessions(), 0);
            assert_eq!(tsa.session_epoch(), 1);
        }

        #[test]
        fn session_init_is_metered_once_per_epoch() {
            let (mut tsa, _, _) = setup(8, 1);
            let before = tsa.boundary_stats().messages_out;
            let a = tsa.session_init();
            let b = tsa.session_init();
            assert_eq!(a.tsa_public.to_bytes(), b.tsa_public.to_bytes());
            assert_eq!(tsa.boundary_stats().messages_out, before + 1);
        }

        #[test]
        fn re_establishment_preserves_the_counter_floor() {
            let (mut tsa, config, _) = setup(8, 1);
            establish(&mut tsa, &config, 1);
            tsa.release_batch(&[MaskRef {
                client_id: 1,
                counter: 5,
            }])
            .unwrap();
            // The host re-establishes (e.g. it lost its cache); the floor
            // must survive so counter 5 stays burned.
            establish(&mut tsa, &config, 1);
            assert_eq!(
                tsa.release_batch(&[MaskRef {
                    client_id: 1,
                    counter: 5,
                }]),
                Err(TsaError::StaleSessionCounter {
                    client_id: 1,
                    counter: 5
                })
            );
        }

        #[test]
        fn batched_release_boundary_traffic_is_constant_per_update() {
            // The session-mode Figure 6 story: 16 bytes per update into the
            // enclave, independent of the model size.
            let (mut tsa, config, _) = setup(1000, 1);
            establish(&mut tsa, &config, 1);
            let bytes_before = tsa.boundary_stats().bytes_in;
            let refs: Vec<MaskRef> = (0..10)
                .map(|counter| MaskRef {
                    client_id: 1,
                    counter,
                })
                .collect();
            tsa.release_batch(&refs).unwrap();
            let batch_bytes = tsa.boundary_stats().bytes_in - bytes_before;
            assert_eq!(batch_bytes, 10 * MaskRef::BYTE_LEN as u64 + 8);
        }
    }

    #[test]
    fn publishing_new_binary_grows_log_and_old_publication_still_verifies() {
        let (mut tsa, _, _) = setup(4, 1);
        let old_pub = tsa.publication();
        let new_size = tsa.publish_new_binary(&crate::attestation::TrustedBinary::new(
            "tsa-v2",
            b"new code".to_vec(),
        ));
        assert_eq!(new_size, 2);
        // Consistency between old and new snapshots is provable.
        let proof = tsa
            .verifiable_log()
            .consistency_proof(old_pub.log_size)
            .unwrap();
        assert!(proof.verify(
            &old_pub.log_root,
            old_pub.log_size,
            &tsa.verifiable_log().root(),
            tsa.verifiable_log().len()
        ));
    }
}
