//! The Trusted Secure Aggregator (the party inside the TEE).
//!
//! The TSA's job per aggregation round: hold the private halves of the
//! pre-generated Diffie–Hellman exchanges, recover each participating
//! client's mask seed, regenerate and sum the masks, and release the
//! aggregated unmask only once at least `t` clients have been processed
//! (Figure 16, steps 1, 6, 7).
//!
//! All traffic in and out of the TSA is metered by a [`BoundaryStats`]
//! counter so Figure 6 can be reproduced.

use crate::attestation::{publish_binary, AttestationQuote, TsaPublication};
use crate::group::GroupVec;
use crate::mask::{expand_mask, MaskSeed, SEED_LEN};
use crate::protocol::{CompletingMessage, KeyExchangeInitialMessage, SecAggConfig};
use papaya_crypto::aead::{open, AeadKey};
use papaya_crypto::chacha20::ChaCha20Rng;
use papaya_crypto::dh::DhPrivateKey;
use papaya_crypto::merkle::MerkleLog;
use std::collections::{HashMap, HashSet};

/// Counters of data crossing the host↔TEE boundary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BoundaryStats {
    /// Bytes transferred into the enclave.
    pub bytes_in: u64,
    /// Bytes transferred out of the enclave.
    pub bytes_out: u64,
    /// Number of messages into the enclave.
    pub messages_in: u64,
    /// Number of messages out of the enclave.
    pub messages_out: u64,
}

/// Errors returned by the TSA.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TsaError {
    /// The completing message references an initial message that was never
    /// issued.
    UnknownIndex(usize),
    /// The referenced initial message has already been completed; the TSA
    /// processes at most one completion per initial message.
    IndexAlreadyUsed(usize),
    /// The encrypted seed failed to authenticate/decrypt (tampering or wrong
    /// key).
    SeedDecryptionFailed,
    /// The encrypted seed has an unexpected length after decryption.
    MalformedSeed,
    /// Fewer than `threshold` clients have been processed, so the unmask
    /// cannot be released.
    ThresholdNotMet {
        /// Clients processed so far in this round.
        processed: usize,
        /// Required threshold.
        required: usize,
    },
    /// The round was already finalized; the TSA ignores further requests
    /// until a new round is started.
    RoundFinalized,
}

impl std::fmt::Display for TsaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TsaError::UnknownIndex(i) => write!(f, "unknown key-exchange index {i}"),
            TsaError::IndexAlreadyUsed(i) => write!(f, "key-exchange index {i} already completed"),
            TsaError::SeedDecryptionFailed => write!(f, "seed decryption failed"),
            TsaError::MalformedSeed => write!(f, "decrypted seed has unexpected length"),
            TsaError::ThresholdNotMet {
                processed,
                required,
            } => write!(
                f,
                "only {processed} of required {required} clients processed"
            ),
            TsaError::RoundFinalized => write!(f, "aggregation round already finalized"),
        }
    }
}

impl std::error::Error for TsaError {}

/// The Trusted Secure Aggregator.
#[derive(Debug)]
pub struct Tsa {
    config: SecAggConfig,
    hardware_key: [u8; 32],
    /// Private halves of issued key exchanges, keyed by index.
    private_keys: HashMap<usize, DhPrivateKey>,
    /// Indices whose completion has already been processed (ever).
    used_indices: HashSet<usize>,
    next_index: usize,
    /// The verifiable log recording released trusted binaries.
    log: MerkleLog,
    /// Running sum of regenerated masks for the current round.
    mask_sum: GroupVec,
    processed: usize,
    finalized: bool,
    boundary: BoundaryStats,
}

impl Tsa {
    /// Boots a TSA "enclave" for the given configuration; `hardware_key` is
    /// the simulated hardware signing key whose public counterpart is the
    /// verification key in [`TsaPublication`].
    pub fn new(config: &SecAggConfig, hardware_key: [u8; 32]) -> Self {
        let mut log = MerkleLog::new();
        publish_binary(&mut log, &config.trusted_binary);
        Tsa {
            config: config.clone(),
            hardware_key,
            private_keys: HashMap::new(),
            used_indices: HashSet::new(),
            next_index: 0,
            log,
            mask_sum: GroupVec::zeros(config.group_params(), config.vector_len),
            processed: 0,
            finalized: false,
            boundary: BoundaryStats::default(),
        }
    }

    /// The public material clients use to validate this TSA: expected binary
    /// measurement, parameter hash, verifiable-log snapshot and inclusion
    /// proof, and the quote verification key.
    pub fn publication(&self) -> TsaPublication {
        let binary = &self.config.trusted_binary;
        let record = binary.log_record();
        let index = (0..self.log.len())
            .find(|&i| self.log.get(i) == Some(record.as_slice()))
            .expect("binary recorded at construction");
        TsaPublication {
            expected_measurement: binary.measurement(),
            expected_params_hash: self.config.params_hash(),
            log_root: self.log.root(),
            log_size: self.log.len(),
            log_index: index,
            log_record: record,
            inclusion_proof: self
                .log
                .inclusion_proof(index)
                .expect("inclusion proof for recorded binary"),
            hardware_key: self.hardware_key,
        }
    }

    /// Records a new trusted binary release in the verifiable log (the
    /// Appendix C.2 update flow).  Returns the new log size.
    pub fn publish_new_binary(&mut self, binary: &crate::attestation::TrustedBinary) -> usize {
        publish_binary(&mut self.log, binary);
        self.log.len()
    }

    /// Read access to the verifiable log (for auditors).
    pub fn verifiable_log(&self) -> &MerkleLog {
        &self.log
    }

    /// Prepares `n` Diffie–Hellman initial messages with attestation quotes
    /// (Figure 16 step 1).  Each may be completed by at most one client.
    pub fn prepare_initial_messages(
        &mut self,
        n: usize,
        rng: &mut ChaCha20Rng,
    ) -> Vec<KeyExchangeInitialMessage> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let index = self.next_index;
            self.next_index += 1;
            let private = DhPrivateKey::generate(&self.config.dh_group, rng);
            let public = private.public_key();
            let payload = public.to_bytes();
            let quote = AttestationQuote::sign(
                &self.hardware_key,
                self.config.trusted_binary.measurement(),
                self.config.params_hash(),
                &payload,
            );
            self.boundary.bytes_out += payload.len() as u64 + 128; // key + quote
            self.boundary.messages_out += 1;
            self.private_keys.insert(index, private);
            out.push(KeyExchangeInitialMessage {
                index,
                tsa_public: public,
                quote,
            });
        }
        out
    }

    /// Processes one client's completing message (Figure 16 step 6): derives
    /// the shared secret, decrypts the seed, regenerates the mask, and adds
    /// it to the running sum.
    ///
    /// # Errors
    ///
    /// See [`TsaError`].
    pub fn process_client(&mut self, completing: &CompletingMessage) -> Result<(), TsaError> {
        if self.finalized {
            return Err(TsaError::RoundFinalized);
        }
        self.boundary.bytes_in += completing.byte_len() as u64;
        self.boundary.messages_in += 1;

        if self.used_indices.contains(&completing.index) {
            return Err(TsaError::IndexAlreadyUsed(completing.index));
        }
        let private = self
            .private_keys
            .get(&completing.index)
            .ok_or(TsaError::UnknownIndex(completing.index))?;
        let shared = private.shared_secret(&completing.client_public);
        let key = AeadKey::from_shared_secret(&shared);
        let ad = seed_associated_data(completing.index);
        let plaintext = open(&key, &ad, &completing.encrypted_seed)
            .map_err(|_| TsaError::SeedDecryptionFailed)?;
        if plaintext.len() != SEED_LEN {
            return Err(TsaError::MalformedSeed);
        }
        let mut seed: MaskSeed = [0u8; SEED_LEN];
        seed.copy_from_slice(&plaintext);
        let mask = expand_mask(&seed, self.config.group_params(), self.config.vector_len);
        self.mask_sum.add_assign(&mask);
        self.processed += 1;
        // "After that, the trusted party will not process any further
        // completing messages to i'th initial message."
        self.used_indices.insert(completing.index);
        self.private_keys.remove(&completing.index);
        Ok(())
    }

    /// Number of clients processed in the current round.
    pub fn processed_clients(&self) -> usize {
        self.processed
    }

    /// Discards the private half of a key exchange whose client will never
    /// complete it (the host turned the upload away before forwarding the
    /// seed).  Without this, every abandoned exchange would pin its private
    /// key forever.  The index stays single-use: a completing message for a
    /// revoked index is rejected like any replay.  Returns whether a
    /// pending exchange was actually revoked.
    pub fn revoke_unused_exchange(&mut self, index: usize) -> bool {
        // The revocation notice is a constant-size host→TEE control message.
        self.boundary.bytes_in += 8;
        self.boundary.messages_in += 1;
        let revoked = self.private_keys.remove(&index).is_some();
        if revoked {
            self.used_indices.insert(index);
        }
        revoked
    }

    /// Number of key exchanges prepared but not yet completed or revoked
    /// (the TSA's only per-client state).
    pub fn pending_exchanges(&self) -> usize {
        self.private_keys.len()
    }

    /// Releases the aggregated unmask (Figure 16 step 7) if at least
    /// `threshold` clients have been processed, and finalizes the round.
    ///
    /// # Errors
    ///
    /// Returns [`TsaError::ThresholdNotMet`] below threshold and
    /// [`TsaError::RoundFinalized`] if already finalized.
    pub fn generate_unmask(&mut self) -> Result<GroupVec, TsaError> {
        if self.finalized {
            return Err(TsaError::RoundFinalized);
        }
        if self.processed < self.config.threshold {
            return Err(TsaError::ThresholdNotMet {
                processed: self.processed,
                required: self.config.threshold,
            });
        }
        self.finalized = true;
        self.boundary.bytes_out += self.mask_sum.byte_len() as u64;
        self.boundary.messages_out += 1;
        Ok(self.mask_sum.clone())
    }

    /// Starts a new aggregation round (new buffer in FedBuff): resets the
    /// running mask sum and the processed counter.  Key-exchange indices stay
    /// single-use across rounds.
    pub fn start_new_round(&mut self) {
        self.mask_sum = GroupVec::zeros(self.config.group_params(), self.config.vector_len);
        self.processed = 0;
        self.finalized = false;
    }

    /// Cumulative host↔TEE boundary traffic.
    pub fn boundary_stats(&self) -> BoundaryStats {
        self.boundary
    }

    /// The configuration this TSA was booted with.
    pub fn config(&self) -> &SecAggConfig {
        &self.config
    }
}

/// Associated data binding an encrypted seed to its key-exchange index.
pub fn seed_associated_data(index: usize) -> Vec<u8> {
    let mut ad = b"papaya/seed/".to_vec();
    ad.extend_from_slice(&(index as u64).to_be_bytes());
    ad
}

/// A naive TEE aggregator that ships every full client update across the
/// enclave boundary (the `O(K·m)` strawman of Figure 6).  Used only for cost
/// comparison.
#[derive(Debug)]
pub struct NaiveTeeAggregator {
    sum: Vec<f64>,
    clients: usize,
    boundary: BoundaryStats,
}

impl NaiveTeeAggregator {
    /// Creates a naive aggregator for updates of the given length.
    pub fn new(vector_len: usize) -> Self {
        NaiveTeeAggregator {
            sum: vec![0.0; vector_len],
            clients: 0,
            boundary: BoundaryStats::default(),
        }
    }

    /// Sends a full update into the enclave and accumulates it.
    ///
    /// # Panics
    ///
    /// Panics if the update length does not match.
    pub fn process_update(&mut self, update: &[f32]) {
        assert_eq!(update.len(), self.sum.len(), "length mismatch");
        self.boundary.bytes_in += (update.len() * 4) as u64;
        self.boundary.messages_in += 1;
        for (s, u) in self.sum.iter_mut().zip(update.iter()) {
            *s += *u as f64;
        }
        self.clients += 1;
    }

    /// Returns the aggregated sum, crossing the boundary outward once.
    pub fn finalize(&mut self) -> Vec<f32> {
        self.boundary.bytes_out += (self.sum.len() * 4) as u64;
        self.boundary.messages_out += 1;
        self.sum.iter().map(|&v| v as f32).collect()
    }

    /// Number of updates aggregated.
    pub fn clients(&self) -> usize {
        self.clients
    }

    /// Cumulative boundary traffic.
    pub fn boundary_stats(&self) -> BoundaryStats {
        self.boundary
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::SecAggClient;

    fn setup(vector_len: usize, threshold: usize) -> (Tsa, SecAggConfig, ChaCha20Rng) {
        let config = SecAggConfig::insecure_fast(vector_len, threshold);
        let tsa = Tsa::new(&config, [0x11u8; 32]);
        let rng = ChaCha20Rng::from_seed([3u8; 32]);
        (tsa, config, rng)
    }

    #[test]
    fn initial_messages_have_unique_indices_and_valid_quotes() {
        let (mut tsa, config, mut rng) = setup(4, 2);
        let publication = tsa.publication();
        let msgs = tsa.prepare_initial_messages(5, &mut rng);
        let mut seen = std::collections::HashSet::new();
        for m in &msgs {
            assert!(seen.insert(m.index));
            assert!(crate::attestation::verify_quote(
                &publication,
                &m.quote,
                &m.tsa_public.to_bytes()
            )
            .is_ok());
        }
        assert_eq!(config.threshold, 2);
    }

    #[test]
    fn unmask_requires_threshold() {
        let (mut tsa, config, mut rng) = setup(4, 3);
        let publication = tsa.publication();
        let msgs = tsa.prepare_initial_messages(3, &mut rng);
        // Only two clients participate.
        for init in msgs.iter().take(2) {
            let upload =
                SecAggClient::participate(&[1.0; 4], init, &publication, &config, &mut rng)
                    .unwrap();
            tsa.process_client(&upload.completing).unwrap();
        }
        assert_eq!(
            tsa.generate_unmask(),
            Err(TsaError::ThresholdNotMet {
                processed: 2,
                required: 3
            })
        );
    }

    #[test]
    fn index_reuse_rejected() {
        let (mut tsa, config, mut rng) = setup(4, 1);
        let publication = tsa.publication();
        let msgs = tsa.prepare_initial_messages(1, &mut rng);
        let upload =
            SecAggClient::participate(&[0.5; 4], &msgs[0], &publication, &config, &mut rng)
                .unwrap();
        tsa.process_client(&upload.completing).unwrap();
        let second =
            SecAggClient::participate(&[0.5; 4], &msgs[0], &publication, &config, &mut rng)
                .unwrap();
        assert_eq!(
            tsa.process_client(&second.completing),
            Err(TsaError::IndexAlreadyUsed(0))
        );
    }

    #[test]
    fn unknown_index_rejected() {
        let (mut tsa, config, mut rng) = setup(4, 1);
        let publication = tsa.publication();
        let msgs = tsa.prepare_initial_messages(1, &mut rng);
        let mut upload =
            SecAggClient::participate(&[0.5; 4], &msgs[0], &publication, &config, &mut rng)
                .unwrap();
        upload.completing.index = 99;
        assert_eq!(
            tsa.process_client(&upload.completing),
            Err(TsaError::UnknownIndex(99))
        );
    }

    #[test]
    fn revoked_exchange_frees_state_and_rejects_completion() {
        let (mut tsa, config, mut rng) = setup(4, 1);
        let publication = tsa.publication();
        let msgs = tsa.prepare_initial_messages(2, &mut rng);
        assert_eq!(tsa.pending_exchanges(), 2);
        assert!(tsa.revoke_unused_exchange(msgs[0].index));
        assert_eq!(tsa.pending_exchanges(), 1);
        // Revoking again (or revoking a completed/unknown index) is a no-op.
        assert!(!tsa.revoke_unused_exchange(msgs[0].index));
        assert!(!tsa.revoke_unused_exchange(999));
        // A completion for the revoked index is rejected like a replay.
        let upload =
            SecAggClient::participate(&[0.5; 4], &msgs[0], &publication, &config, &mut rng)
                .unwrap();
        assert_eq!(
            tsa.process_client(&upload.completing),
            Err(TsaError::IndexAlreadyUsed(msgs[0].index))
        );
        // The untouched exchange still works.
        let ok = SecAggClient::participate(&[0.5; 4], &msgs[1], &publication, &config, &mut rng)
            .unwrap();
        tsa.process_client(&ok.completing).unwrap();
        assert_eq!(tsa.pending_exchanges(), 0);
    }

    #[test]
    fn tampered_seed_rejected() {
        let (mut tsa, config, mut rng) = setup(4, 1);
        let publication = tsa.publication();
        let msgs = tsa.prepare_initial_messages(1, &mut rng);
        let mut upload =
            SecAggClient::participate(&[0.5; 4], &msgs[0], &publication, &config, &mut rng)
                .unwrap();
        let n = upload.completing.encrypted_seed.len();
        upload.completing.encrypted_seed[n / 2] ^= 1;
        assert_eq!(
            tsa.process_client(&upload.completing),
            Err(TsaError::SeedDecryptionFailed)
        );
    }

    #[test]
    fn finalized_round_ignores_further_messages() {
        let (mut tsa, config, mut rng) = setup(4, 1);
        let publication = tsa.publication();
        let msgs = tsa.prepare_initial_messages(2, &mut rng);
        let upload =
            SecAggClient::participate(&[0.5; 4], &msgs[0], &publication, &config, &mut rng)
                .unwrap();
        tsa.process_client(&upload.completing).unwrap();
        tsa.generate_unmask().unwrap();
        let late = SecAggClient::participate(&[0.5; 4], &msgs[1], &publication, &config, &mut rng)
            .unwrap();
        assert_eq!(
            tsa.process_client(&late.completing),
            Err(TsaError::RoundFinalized)
        );
        assert_eq!(tsa.generate_unmask(), Err(TsaError::RoundFinalized));
        // A new round accepts clients again.
        tsa.start_new_round();
        assert!(tsa.process_client(&late.completing).is_ok());
    }

    #[test]
    fn boundary_traffic_is_constant_per_client() {
        let (mut tsa, config, mut rng) = setup(1000, 1);
        let publication = tsa.publication();
        let msgs = tsa.prepare_initial_messages(3, &mut rng);
        let before = tsa.boundary_stats();
        let mut per_client = Vec::new();
        for init in &msgs {
            let upload =
                SecAggClient::participate(&[0.1; 1000], init, &publication, &config, &mut rng)
                    .unwrap();
            let b0 = tsa.boundary_stats().bytes_in;
            tsa.process_client(&upload.completing).unwrap();
            per_client.push(tsa.boundary_stats().bytes_in - b0);
        }
        // Inbound bytes per client are independent of the 1000-element model.
        assert!(per_client.iter().all(|&b| b == per_client[0]));
        assert!(per_client[0] < 1000);
        assert_eq!(before.bytes_in, 0);
    }

    #[test]
    fn naive_aggregator_sums_and_charges_full_model() {
        let mut naive = NaiveTeeAggregator::new(3);
        naive.process_update(&[1.0, 2.0, 3.0]);
        naive.process_update(&[0.5, 0.5, 0.5]);
        let sum = naive.finalize();
        assert_eq!(sum, vec![1.5, 2.5, 3.5]);
        let stats = naive.boundary_stats();
        assert_eq!(stats.bytes_in, 2 * 12);
        assert_eq!(stats.bytes_out, 12);
        assert_eq!(naive.clients(), 2);
    }

    #[test]
    fn publishing_new_binary_grows_log_and_old_publication_still_verifies() {
        let (mut tsa, _, _) = setup(4, 1);
        let old_pub = tsa.publication();
        let new_size = tsa.publish_new_binary(&crate::attestation::TrustedBinary::new(
            "tsa-v2",
            b"new code".to_vec(),
        ));
        assert_eq!(new_size, 2);
        // Consistency between old and new snapshots is provable.
        let proof = tsa
            .verifiable_log()
            .consistency_proof(old_pub.log_size)
            .unwrap();
        assert!(proof.verify(
            &old_pub.log_root,
            old_pub.log_size,
            &tsa.verifiable_log().root(),
            tsa.verifiable_log().len()
        ));
    }
}
