//! Protocol configuration and wire messages.

use crate::attestation::{params_hash, AttestationQuote, TrustedBinary};
use crate::fixed_point::FixedPointCodec;
use crate::group::{GroupParams, GroupVec};
use papaya_crypto::dh::{DhGroup, DhPublicKey};

/// Static configuration of a secure-aggregation deployment: the finite group
/// and fixed-point scale, the update vector length, the unmasking threshold
/// `t`, the Diffie–Hellman group, and the trusted binary.
#[derive(Clone, Debug)]
pub struct SecAggConfig {
    /// Length of the flattened model-update vector.
    pub vector_len: usize,
    /// Minimum number of clients that must contribute before the TSA releases
    /// the unmask (the ideal functionality's `t`).
    pub threshold: usize,
    /// Fixed-point codec (group modulus + scale).
    pub codec: FixedPointCodec,
    /// Diffie–Hellman group for the client↔TSA channels.
    pub dh_group: DhGroup,
    /// The trusted binary expected to run inside the enclave.
    pub trusted_binary: TrustedBinary,
}

impl SecAggConfig {
    /// Production-flavoured configuration: `Z_{2^32}` fixed point and the
    /// RFC 3526 2048-bit Diffie–Hellman group.
    pub fn production(vector_len: usize, threshold: usize) -> Self {
        SecAggConfig {
            vector_len,
            threshold,
            codec: FixedPointCodec::default_for_updates(),
            dh_group: DhGroup::rfc3526_2048(),
            trusted_binary: TrustedBinary::new(
                "papaya-tsa-v1",
                b"papaya trusted secure aggregator binary v1".to_vec(),
            ),
        }
    }

    /// Fast configuration for tests and large simulations: same protocol code
    /// path but a small (non-production-strength) DH group.
    pub fn insecure_fast(vector_len: usize, threshold: usize) -> Self {
        SecAggConfig {
            dh_group: DhGroup::test_group_256(),
            ..Self::production(vector_len, threshold)
        }
    }

    /// The group parameters of the masking group.
    pub fn group_params(&self) -> GroupParams {
        self.codec.params()
    }

    /// Hash of the public parameters, bound into attestation quotes.
    pub fn params_hash(&self) -> [u8; 32] {
        params_hash(
            self.group_params().modulus(),
            self.vector_len,
            self.threshold,
        )
    }
}

/// A Diffie–Hellman initial message prepared by the TSA, forwarded to a
/// client by the server together with its attestation quote.
#[derive(Clone, Debug)]
pub struct KeyExchangeInitialMessage {
    /// Index of this initial message (each may be completed at most once).
    pub index: usize,
    /// The TSA's ephemeral public key for this exchange.
    pub tsa_public: DhPublicKey,
    /// Quote binding the binary, the parameters, and this public key.
    pub quote: AttestationQuote,
}

/// The part of a client's upload that is forwarded into the TSA: the key
/// exchange completion and the encrypted mask seed.
#[derive(Clone, Debug)]
pub struct CompletingMessage {
    /// Index of the initial message being completed.
    pub index: usize,
    /// The client's ephemeral public key.
    pub client_public: DhPublicKey,
    /// The AEAD-sealed 16-byte mask seed.
    pub encrypted_seed: Vec<u8>,
}

impl CompletingMessage {
    /// Serialized size in bytes, used for host→TEE boundary accounting.
    pub fn byte_len(&self) -> usize {
        8 + self.client_public.to_bytes().len() + self.encrypted_seed.len()
    }
}

/// A client's full upload: the masked update (stays on the untrusted host)
/// and the completing message (crosses into the TSA).
#[derive(Clone, Debug)]
pub struct ClientUploadMessage {
    /// The fixed-point-encoded, one-time-pad-masked model update.
    pub masked_update: GroupVec,
    /// Key-exchange completion plus encrypted seed for the TSA.
    pub completing: CompletingMessage,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn params_hash_changes_with_threshold() {
        let a = SecAggConfig::insecure_fast(10, 3);
        let b = SecAggConfig::insecure_fast(10, 4);
        assert_ne!(a.params_hash(), b.params_hash());
    }

    #[test]
    fn production_and_fast_differ_only_in_group() {
        let a = SecAggConfig::production(10, 3);
        let b = SecAggConfig::insecure_fast(10, 3);
        assert_eq!(a.vector_len, b.vector_len);
        assert_eq!(a.codec, b.codec);
        assert_ne!(a.dh_group.name(), b.dh_group.name());
    }

    #[test]
    fn completing_message_byte_len_counts_components() {
        let config = SecAggConfig::insecure_fast(4, 2);
        let mut rng = papaya_crypto::chacha20::ChaCha20Rng::from_seed([1u8; 32]);
        let key = papaya_crypto::dh::DhPrivateKey::generate(&config.dh_group, &mut rng);
        let msg = CompletingMessage {
            index: 3,
            client_public: key.public_key(),
            encrypted_seed: vec![0u8; 60],
        };
        assert_eq!(msg.byte_len(), 8 + 256 + 60);
    }
}
