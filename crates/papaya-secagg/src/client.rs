//! Client-side secure-aggregation protocol (Figure 16 steps 3–4 and the
//! Appendix C attestation checks).

use crate::attestation::{verify_quote, AttestationError, TsaPublication};
use crate::mask::{expand_mask, random_seed};
use crate::protocol::{
    ClientUploadMessage, CompletingMessage, KeyExchangeInitialMessage, SecAggConfig,
};
use crate::tsa::seed_associated_data;
use papaya_crypto::aead::{seal, AeadKey};
use papaya_crypto::chacha20::ChaCha20Rng;
use papaya_crypto::dh::DhPrivateKey;

/// Errors a participating client can encounter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientError {
    /// Attestation or verifiable-log validation failed; the client aborts
    /// without revealing anything.
    Attestation(AttestationError),
    /// The local update length does not match the configured vector length.
    WrongUpdateLength {
        /// Length of the update the caller supplied.
        got: usize,
        /// Configured vector length.
        expected: usize,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Attestation(e) => write!(f, "attestation failed: {e}"),
            ClientError::WrongUpdateLength { got, expected } => {
                write!(f, "update has {got} elements, expected {expected}")
            }
        }
    }
}

impl std::error::Error for ClientError {}

impl From<AttestationError> for ClientError {
    fn from(e: AttestationError) -> Self {
        ClientError::Attestation(e)
    }
}

/// Stateless client-side protocol functions.
#[derive(Debug)]
pub struct SecAggClient;

impl SecAggClient {
    /// Runs the whole client side of the protocol for one participation:
    ///
    /// 1. validates the attestation quote and verifiable-log inclusion of the
    ///    trusted binary;
    /// 2. completes the Diffie–Hellman exchange with the TSA;
    /// 3. samples a fresh mask seed, encrypts it for the TSA;
    /// 4. fixed-point-encodes and masks the model update.
    ///
    /// Returns the upload message; the masked update goes to the untrusted
    /// aggregator and the completing message is forwarded into the TSA.
    ///
    /// # Errors
    ///
    /// Returns [`ClientError::Attestation`] when the TSA cannot be validated
    /// (the client aborts, step 3 of Figure 16) and
    /// [`ClientError::WrongUpdateLength`] on a configuration mismatch.
    pub fn participate(
        update: &[f32],
        initial: &KeyExchangeInitialMessage,
        publication: &TsaPublication,
        config: &SecAggConfig,
        rng: &mut ChaCha20Rng,
    ) -> Result<ClientUploadMessage, ClientError> {
        if update.len() != config.vector_len {
            return Err(ClientError::WrongUpdateLength {
                got: update.len(),
                expected: config.vector_len,
            });
        }
        // Validate the enclave before revealing anything derived from data.
        verify_quote(publication, &initial.quote, &initial.tsa_public.to_bytes())?;

        // Complete the key exchange.
        let client_key = DhPrivateKey::generate(&config.dh_group, rng);
        let shared = client_key.shared_secret(&initial.tsa_public);
        let aead_key = AeadKey::from_shared_secret(&shared);

        // Sample and encrypt the mask seed.
        let seed = random_seed(rng);
        let mut nonce = [0u8; 12];
        rng.fill_bytes(&mut nonce);
        let encrypted_seed = seal(
            &aead_key,
            &nonce,
            &seed_associated_data(initial.index),
            &seed,
        );

        // Mask the encoded update.
        let encoded = config.codec.encode_vec(update);
        let mask = expand_mask(&seed, config.group_params(), config.vector_len);
        let masked_update = encoded.add(&mask);

        Ok(ClientUploadMessage {
            masked_update,
            completing: CompletingMessage {
                index: initial.index,
                client_public: client_key.public_key(),
                encrypted_seed,
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attestation::AttestationError;
    use crate::tsa::Tsa;

    fn setup() -> (Tsa, SecAggConfig, TsaPublication, ChaCha20Rng) {
        let config = SecAggConfig::insecure_fast(8, 2);
        let tsa = Tsa::new(&config, [0x42u8; 32]);
        let publication = tsa.publication();
        let rng = ChaCha20Rng::from_seed([9u8; 32]);
        (tsa, config, publication, rng)
    }

    #[test]
    fn participation_produces_masked_update() {
        let (mut tsa, config, publication, mut rng) = setup();
        let init = tsa.prepare_initial_messages(1, &mut rng).pop().unwrap();
        let update = [0.5f32; 8];
        let msg =
            SecAggClient::participate(&update, &init, &publication, &config, &mut rng).unwrap();
        // The masked update must differ from the plain encoding (the mask is
        // non-trivial with overwhelming probability).
        let plain = config.codec.encode_vec(&update);
        assert_ne!(msg.masked_update, plain);
        assert_eq!(msg.masked_update.len(), 8);
        assert_eq!(msg.completing.index, init.index);
    }

    #[test]
    fn two_participations_use_different_masks_and_seeds() {
        let (mut tsa, config, publication, mut rng) = setup();
        let inits = tsa.prepare_initial_messages(2, &mut rng);
        let update = [1.0f32; 8];
        let a =
            SecAggClient::participate(&update, &inits[0], &publication, &config, &mut rng).unwrap();
        let b =
            SecAggClient::participate(&update, &inits[1], &publication, &config, &mut rng).unwrap();
        assert_ne!(a.masked_update, b.masked_update);
        assert_ne!(a.completing.encrypted_seed, b.completing.encrypted_seed);
    }

    #[test]
    fn wrong_update_length_rejected() {
        let (mut tsa, config, publication, mut rng) = setup();
        let init = tsa.prepare_initial_messages(1, &mut rng).pop().unwrap();
        let err = SecAggClient::participate(&[1.0f32; 4], &init, &publication, &config, &mut rng)
            .unwrap_err();
        assert_eq!(
            err,
            ClientError::WrongUpdateLength {
                got: 4,
                expected: 8
            }
        );
    }

    #[test]
    fn client_aborts_on_wrong_binary_publication() {
        let (mut tsa, config, mut publication, mut rng) = setup();
        let init = tsa.prepare_initial_messages(1, &mut rng).pop().unwrap();
        publication.expected_measurement = [0u8; 32];
        let err = SecAggClient::participate(&[0.0f32; 8], &init, &publication, &config, &mut rng)
            .unwrap_err();
        assert_eq!(err, ClientError::Attestation(AttestationError::WrongBinary));
    }

    #[test]
    fn client_aborts_on_tampered_initial_message() {
        let (mut tsa, config, publication, mut rng) = setup();
        let mut init = tsa.prepare_initial_messages(1, &mut rng).pop().unwrap();
        // A man-in-the-middle swaps the TSA public key for its own.
        let mitm = DhPrivateKey::generate(&config.dh_group, &mut rng);
        init.tsa_public = mitm.public_key();
        let err = SecAggClient::participate(&[0.0f32; 8], &init, &publication, &config, &mut rng)
            .unwrap_err();
        assert_eq!(
            err,
            ClientError::Attestation(AttestationError::PayloadMismatch)
        );
    }

    #[test]
    fn masked_update_reveals_nothing_without_the_seed() {
        // Two very different updates produce masked vectors that are both
        // (statistically) uniform; in particular neither equals its plain
        // encoding and their difference does not equal the plain difference.
        let (mut tsa, config, publication, mut rng) = setup();
        let inits = tsa.prepare_initial_messages(2, &mut rng);
        let small = [0.0f32; 8];
        let large = [100.0f32; 8];
        let a =
            SecAggClient::participate(&small, &inits[0], &publication, &config, &mut rng).unwrap();
        let b =
            SecAggClient::participate(&large, &inits[1], &publication, &config, &mut rng).unwrap();
        let plain_diff = config
            .codec
            .encode_vec(&large)
            .sub(&config.codec.encode_vec(&small));
        let masked_diff = b.masked_update.sub(&a.masked_update);
        assert_ne!(plain_diff, masked_diff);
    }
}
