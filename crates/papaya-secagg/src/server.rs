//! The untrusted server-side aggregator.
//!
//! The aggregator never sees a client's unmasked update: it sums masked
//! updates incrementally (Figure 16 step 5) and, once the aggregation goal is
//! reached, asks the TSA for the aggregated unmask and subtracts it
//! (step 8).

use crate::fixed_point::FixedPointCodec;
use crate::group::GroupVec;
use crate::protocol::{ClientUploadMessage, SecAggConfig};
use crate::session::MaskRef;
use crate::tsa::{Tsa, TsaError};

/// Errors returned by the untrusted aggregator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AggregatorError {
    /// The masked update has the wrong length or group.
    MalformedUpdate,
    /// The TSA rejected the client's completing message; the update was not
    /// aggregated.
    Tsa(TsaError),
}

impl std::fmt::Display for AggregatorError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AggregatorError::MalformedUpdate => write!(f, "malformed masked update"),
            AggregatorError::Tsa(e) => write!(f, "TSA rejected client: {e}"),
        }
    }
}

impl std::error::Error for AggregatorError {}

impl From<TsaError> for AggregatorError {
    fn from(e: TsaError) -> Self {
        AggregatorError::Tsa(e)
    }
}

/// Incremental aggregator of masked client updates.
#[derive(Debug)]
pub struct UntrustedAggregator {
    codec: FixedPointCodec,
    vector_len: usize,
    masked_sum: GroupVec,
    accepted: usize,
}

impl UntrustedAggregator {
    /// Creates an aggregator for the given configuration.
    pub fn new(config: &SecAggConfig) -> Self {
        UntrustedAggregator {
            codec: config.codec,
            vector_len: config.vector_len,
            masked_sum: GroupVec::zeros(config.group_params(), config.vector_len),
            accepted: 0,
        }
    }

    /// Number of updates accepted into the current buffer.
    pub fn accepted(&self) -> usize {
        self.accepted
    }

    /// Submits one client upload: forwards the completing message to the TSA
    /// and, if the TSA accepts it, adds the masked update to the running sum.
    ///
    /// # Errors
    ///
    /// Returns [`AggregatorError::MalformedUpdate`] for shape mismatches and
    /// [`AggregatorError::Tsa`] when the TSA rejects the client (in which
    /// case the masked update is discarded, keeping host and TSA sums
    /// consistent).
    pub fn submit(
        &mut self,
        msg: ClientUploadMessage,
        tsa: &mut Tsa,
    ) -> Result<(), AggregatorError> {
        if msg.masked_update.len() != self.vector_len
            || msg.masked_update.params() != self.masked_sum.params()
        {
            return Err(AggregatorError::MalformedUpdate);
        }
        tsa.process_client(&msg.completing)?;
        self.masked_sum.add_assign(&msg.masked_update);
        self.accepted += 1;
        Ok(())
    }

    /// Finalizes the buffer: obtains the unmask from the TSA, subtracts it,
    /// decodes the sum of updates, and resets both the aggregator and the
    /// TSA for the next buffer.
    ///
    /// # Errors
    ///
    /// Propagates [`TsaError::ThresholdNotMet`] if too few clients
    /// contributed.
    pub fn finalize(&mut self, tsa: &mut Tsa) -> Result<Vec<f32>, AggregatorError> {
        let unmask = tsa.generate_unmask()?;
        let sum = self.masked_sum.sub(&unmask);
        let decoded = self.codec.decode_vec(&sum);
        // Reset for the next aggregation buffer.
        self.masked_sum = GroupVec::zeros(self.masked_sum.params(), self.vector_len);
        self.accepted = 0;
        tsa.start_new_round();
        Ok(decoded)
    }

    /// Submits one session-mode masked update: only the masked vector is
    /// added to the running sum — the TSA learns about it later, as one
    /// 16-byte [`MaskRef`] inside the closing buffer's
    /// [`UntrustedAggregator::finalize_batch`] call, instead of through a
    /// per-update completing message.
    ///
    /// # Errors
    ///
    /// Returns [`AggregatorError::MalformedUpdate`] for shape mismatches.
    pub fn submit_masked(&mut self, masked: &GroupVec) -> Result<(), AggregatorError> {
        if masked.len() != self.vector_len || masked.params() != self.masked_sum.params() {
            return Err(AggregatorError::MalformedUpdate);
        }
        self.masked_sum.add_assign(masked);
        self.accepted += 1;
        Ok(())
    }

    /// Finalizes a session-mode buffer in one TSA round-trip: sends the
    /// buffer's [`MaskRef`]s, receives the accumulated mask sum, subtracts
    /// it in a single pass, and decodes.  The aggregator resets for the next
    /// buffer; the TSA has no per-round state to reset in session mode.
    ///
    /// # Errors
    ///
    /// Propagates the TSA's batch validation errors; on error the host
    /// buffer is left untouched (no state was released).
    pub fn finalize_batch(
        &mut self,
        tsa: &mut Tsa,
        refs: &[MaskRef],
    ) -> Result<Vec<f32>, AggregatorError> {
        let unmask = tsa.release_batch(refs)?;
        let sum = self.masked_sum.sub(&unmask);
        let decoded = self.codec.decode_vec(&sum);
        self.discard_masked_sum();
        Ok(decoded)
    }

    /// Drops the session-mode masked partial sum without any TSA contact:
    /// the buffer's `MaskRef`s are never sent, so no key material for it is
    /// ever released.  Returns how many masked updates were dropped.
    pub fn discard_masked_sum(&mut self) -> usize {
        let dropped = self.accepted;
        self.masked_sum = GroupVec::zeros(self.masked_sum.params(), self.vector_len);
        self.accepted = 0;
        dropped
    }

    /// Abandons the buffer in progress *without* a TSA key release: the
    /// masked partial sum is dropped on the host and the TSA forgets the
    /// matching mask sum, so the unmask for this buffer is never generated
    /// and the server learns nothing about the dropped contributions.
    ///
    /// This is the streaming counterpart of a FedBuff Aggregator crash
    /// (`drop_buffered_updates`): buffered state dies with the process, and
    /// the next buffer starts clean on both sides of the TEE boundary.
    /// Returns how many masked updates were dropped.
    pub fn discard_buffer(&mut self, tsa: &mut Tsa) -> usize {
        let dropped = self.accepted;
        self.masked_sum = GroupVec::zeros(self.masked_sum.params(), self.vector_len);
        self.accepted = 0;
        tsa.start_new_round();
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::SecAggClient;
    use papaya_crypto::chacha20::ChaCha20Rng;

    fn run_round(
        updates: &[Vec<f32>],
        vector_len: usize,
        threshold: usize,
    ) -> Result<Vec<f32>, AggregatorError> {
        let config = SecAggConfig::insecure_fast(vector_len, threshold);
        let mut tsa = Tsa::new(&config, [0x77u8; 32]);
        let publication = tsa.publication();
        let mut rng = ChaCha20Rng::from_seed([21u8; 32]);
        let inits = tsa.prepare_initial_messages(updates.len(), &mut rng);
        let mut agg = UntrustedAggregator::new(&config);
        for (update, init) in updates.iter().zip(inits.iter()) {
            let msg =
                SecAggClient::participate(update, init, &publication, &config, &mut rng).unwrap();
            agg.submit(msg, &mut tsa)?;
        }
        agg.finalize(&mut tsa)
    }

    #[test]
    fn aggregated_sum_matches_plain_sum() {
        let updates = vec![
            vec![0.5, -1.0, 2.0, 0.0],
            vec![1.5, 1.0, -2.0, 0.25],
            vec![-0.5, 0.5, 1.0, -0.125],
        ];
        let sum = run_round(&updates, 4, 3).unwrap();
        let expected = [1.5f32, 0.5, 1.0, 0.125];
        for (s, e) in sum.iter().zip(expected.iter()) {
            assert!((s - e).abs() < 1e-3, "{s} vs {e}");
        }
    }

    #[test]
    fn below_threshold_finalize_fails() {
        let updates = vec![vec![1.0, 1.0], vec![2.0, 2.0]];
        let err = run_round(&updates, 2, 3).unwrap_err();
        assert!(matches!(
            err,
            AggregatorError::Tsa(TsaError::ThresholdNotMet {
                processed: 2,
                required: 3
            })
        ));
    }

    #[test]
    fn consecutive_buffers_are_independent() {
        let config = SecAggConfig::insecure_fast(3, 2);
        let mut tsa = Tsa::new(&config, [0x55u8; 32]);
        let publication = tsa.publication();
        let mut rng = ChaCha20Rng::from_seed([4u8; 32]);
        let inits = tsa.prepare_initial_messages(4, &mut rng);
        let mut agg = UntrustedAggregator::new(&config);

        for init in inits.iter().take(2) {
            let msg =
                SecAggClient::participate(&[1.0, 2.0, 3.0], init, &publication, &config, &mut rng)
                    .unwrap();
            agg.submit(msg, &mut tsa).unwrap();
        }
        let first = agg.finalize(&mut tsa).unwrap();
        assert!((first[0] - 2.0).abs() < 1e-3);

        for init in inits.iter().skip(2) {
            let msg =
                SecAggClient::participate(&[-1.0, 0.0, 1.0], init, &publication, &config, &mut rng)
                    .unwrap();
            agg.submit(msg, &mut tsa).unwrap();
        }
        let second = agg.finalize(&mut tsa).unwrap();
        assert!(
            (second[0] + 2.0).abs() < 1e-3,
            "second buffer contaminated: {second:?}"
        );
        assert!((second[2] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn rejected_client_does_not_poison_the_sum() {
        let config = SecAggConfig::insecure_fast(2, 1);
        let mut tsa = Tsa::new(&config, [0x66u8; 32]);
        let publication = tsa.publication();
        let mut rng = ChaCha20Rng::from_seed([6u8; 32]);
        let inits = tsa.prepare_initial_messages(2, &mut rng);
        let mut agg = UntrustedAggregator::new(&config);

        let good =
            SecAggClient::participate(&[1.0, 1.0], &inits[0], &publication, &config, &mut rng)
                .unwrap();
        agg.submit(good, &mut tsa).unwrap();

        // An attacker replays the same completing message with a different
        // masked update; the TSA rejects it and the sum stays correct.
        let mut replay =
            SecAggClient::participate(&[50.0, 50.0], &inits[1], &publication, &config, &mut rng)
                .unwrap();
        replay.completing.index = inits[0].index;
        let err = agg.submit(replay, &mut tsa).unwrap_err();
        assert!(matches!(
            err,
            AggregatorError::Tsa(TsaError::IndexAlreadyUsed(_))
        ));

        let sum = agg.finalize(&mut tsa).unwrap();
        assert!((sum[0] - 1.0).abs() < 1e-3);
        assert_eq!(agg.accepted(), 0, "aggregator reset after finalize");
    }

    #[test]
    fn discard_buffer_drops_partial_sum_without_key_release() {
        let config = SecAggConfig::insecure_fast(3, 2);
        let mut tsa = Tsa::new(&config, [0x29u8; 32]);
        let publication = tsa.publication();
        let mut rng = ChaCha20Rng::from_seed([13u8; 32]);
        let inits = tsa.prepare_initial_messages(4, &mut rng);
        let mut agg = UntrustedAggregator::new(&config);

        // Two updates land, then the buffer is abandoned (Aggregator crash).
        for init in inits.iter().take(2) {
            let msg =
                SecAggClient::participate(&[5.0, 5.0, 5.0], init, &publication, &config, &mut rng)
                    .unwrap();
            agg.submit(msg, &mut tsa).unwrap();
        }
        let out_before = tsa.boundary_stats().messages_out;
        assert_eq!(agg.discard_buffer(&mut tsa), 2);
        assert_eq!(agg.accepted(), 0);
        // No unmask vector crossed the boundary: the TSA never released a key
        // for the partial buffer.
        assert_eq!(tsa.boundary_stats().messages_out, out_before);

        // The next buffer is uncontaminated by the dropped masked updates.
        for init in inits.iter().skip(2) {
            let msg =
                SecAggClient::participate(&[1.0, 2.0, 3.0], init, &publication, &config, &mut rng)
                    .unwrap();
            agg.submit(msg, &mut tsa).unwrap();
        }
        let sum = agg.finalize(&mut tsa).unwrap();
        assert!((sum[0] - 2.0).abs() < 1e-3, "contaminated: {sum:?}");
        assert!((sum[2] - 6.0).abs() < 1e-3, "contaminated: {sum:?}");
    }

    #[test]
    fn session_mode_round_matches_plain_sum() {
        // The full session-mode data path: handshake once per client, mask
        // with ratcheted seeds, release the whole buffer in one batch.
        use crate::session::{client_handshake, ratchet_seed, MaskRef};
        let config = SecAggConfig::insecure_fast(4, 2);
        let mut tsa = Tsa::new(&config, [0x31u8; 32]);
        let publication = tsa.publication();
        let init = tsa.session_init();
        let mut agg = UntrustedAggregator::new(&config);

        let updates = [vec![0.5f32, -1.0, 2.0, 0.0], vec![1.5, 1.0, -2.0, 0.25]];
        let mut refs = Vec::new();
        for (client_id, update) in updates.iter().enumerate() {
            let client_id = client_id as u64;
            let handshake = client_handshake(
                &config.dh_group,
                &[client_id as u8 + 9; 32],
                &init,
                &publication,
            );
            tsa.establish_session(client_id, &handshake.client_public);
            let seed = ratchet_seed(&handshake.secret, 0);
            let mask = crate::mask::expand_mask(&seed, config.group_params(), 4);
            let masked = config.codec.encode_vec(update).add(&mask);
            agg.submit_masked(&masked).unwrap();
            refs.push(MaskRef {
                client_id,
                counter: 0,
            });
        }
        assert_eq!(agg.accepted(), 2);
        let sum = agg.finalize_batch(&mut tsa, &refs).unwrap();
        let expected = [2.0f32, 0.0, 0.0, 0.25];
        for (s, e) in sum.iter().zip(expected.iter()) {
            assert!((s - e).abs() < 1e-3, "{s} vs {e}");
        }
        assert_eq!(agg.accepted(), 0, "aggregator reset after batch release");
    }

    #[test]
    fn failed_batch_release_leaves_the_buffer_intact() {
        use crate::session::MaskRef;
        let config = SecAggConfig::insecure_fast(2, 3);
        let mut tsa = Tsa::new(&config, [0x32u8; 32]);
        let mut agg = UntrustedAggregator::new(&config);
        let masked = GroupVec::zeros(config.group_params(), 2);
        agg.submit_masked(&masked).unwrap();
        let refs = [MaskRef {
            client_id: 0,
            counter: 0,
        }];
        assert!(agg.finalize_batch(&mut tsa, &refs).is_err());
        assert_eq!(agg.accepted(), 1, "buffer must survive a failed release");
    }

    #[test]
    fn discard_masked_sum_never_contacts_the_tsa() {
        let config = SecAggConfig::insecure_fast(2, 1);
        let tsa = Tsa::new(&config, [0x33u8; 32]);
        let mut agg = UntrustedAggregator::new(&config);
        agg.submit_masked(&GroupVec::zeros(config.group_params(), 2))
            .unwrap();
        let before = tsa.boundary_stats();
        assert_eq!(agg.discard_masked_sum(), 1);
        assert_eq!(agg.accepted(), 0);
        assert_eq!(tsa.boundary_stats(), before);
    }

    #[test]
    fn submit_masked_rejects_wrong_shape() {
        let config = SecAggConfig::insecure_fast(4, 1);
        let mut agg = UntrustedAggregator::new(&config);
        let wrong_len = GroupVec::zeros(config.group_params(), 8);
        assert_eq!(
            agg.submit_masked(&wrong_len).unwrap_err(),
            AggregatorError::MalformedUpdate
        );
        let wrong_group = GroupVec::zeros(crate::group::GroupParams::new(97), 4);
        assert_eq!(
            agg.submit_masked(&wrong_group).unwrap_err(),
            AggregatorError::MalformedUpdate
        );
    }

    #[test]
    fn malformed_update_rejected() {
        let config = SecAggConfig::insecure_fast(4, 1);
        let other = SecAggConfig::insecure_fast(8, 1);
        let mut tsa = Tsa::new(&config, [0x01u8; 32]);
        let other_tsa_pub = Tsa::new(&other, [0x01u8; 32]).publication();
        let mut rng = ChaCha20Rng::from_seed([8u8; 32]);
        let mut other_tsa = Tsa::new(&other, [0x01u8; 32]);
        let init = other_tsa
            .prepare_initial_messages(1, &mut rng)
            .pop()
            .unwrap();
        let msg =
            SecAggClient::participate(&[1.0; 8], &init, &other_tsa_pub, &other, &mut rng).unwrap();
        let mut agg = UntrustedAggregator::new(&config);
        assert_eq!(
            agg.submit(msg, &mut tsa).unwrap_err(),
            AggregatorError::MalformedUpdate
        );
    }
}
