//! One-time-pad mask expansion.
//!
//! A 16-byte random seed, shared between a client and the TSA over the
//! Diffie–Hellman channel, is expanded by ChaCha20 into a vector of group
//! elements "as large as the model at a constant cost" (Section 5).  Both
//! sides run this exact function, so the client's mask and the TSA's
//! regenerated mask cancel.

use crate::group::{GroupParams, GroupVec};
use papaya_crypto::chacha20::ChaCha20Rng;

/// The seed size used by the protocol (the paper's "usually 16 bytes").
pub const SEED_LEN: usize = 16;

/// A mask seed.
pub type MaskSeed = [u8; SEED_LEN];

/// Deterministically expands `seed` into a mask of `len` group elements.
pub fn expand_mask(seed: &MaskSeed, params: GroupParams, len: usize) -> GroupVec {
    let mut rng = ChaCha20Rng::from_seed16(*seed);
    let modulus = params.modulus();
    let values = (0..len).map(|_| rng.next_below(modulus)).collect();
    GroupVec::from_values(params, values)
}

/// Expands `seed` into `out`, reusing the buffer's capacity.  Produces the
/// exact element stream of [`expand_mask`]; hot paths that expand many masks
/// (the batched TSA release, the per-worker speculative precompute) call
/// this with a long-lived scratch buffer to avoid per-mask allocation.
pub fn expand_mask_into(seed: &MaskSeed, params: GroupParams, len: usize, out: &mut Vec<u64>) {
    let mut rng = ChaCha20Rng::from_seed16(*seed);
    let modulus = params.modulus();
    out.clear();
    out.extend((0..len).map(|_| rng.next_below(modulus)));
}

/// Samples a fresh random seed from the provided RNG.
pub fn random_seed(rng: &mut ChaCha20Rng) -> MaskSeed {
    let mut seed = [0u8; SEED_LEN];
    rng.fill_bytes(&mut seed);
    seed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expansion_is_deterministic() {
        let params = GroupParams::z2_32();
        let seed = [9u8; SEED_LEN];
        assert_eq!(
            expand_mask(&seed, params, 100),
            expand_mask(&seed, params, 100)
        );
    }

    #[test]
    fn different_seeds_give_different_masks() {
        let params = GroupParams::z2_32();
        let a = expand_mask(&[1u8; SEED_LEN], params, 64);
        let b = expand_mask(&[2u8; SEED_LEN], params, 64);
        assert_ne!(a, b);
    }

    #[test]
    fn mask_elements_are_in_group() {
        let params = GroupParams::new(1000);
        let mask = expand_mask(&[3u8; SEED_LEN], params, 500);
        assert!(mask.values().iter().all(|&v| v < 1000));
    }

    #[test]
    fn mask_looks_uniform() {
        // Crude uniformity check: mean of Z_2^32 mask elements should be near
        // the center of the range.
        let params = GroupParams::z2_32();
        let mask = expand_mask(&[4u8; SEED_LEN], params, 20_000);
        let mean = mask.values().iter().map(|&v| v as f64).sum::<f64>() / mask.len() as f64;
        let center = (1u64 << 31) as f64;
        assert!((mean - center).abs() < 0.02 * center, "mean {mean}");
    }

    #[test]
    fn mask_cancels_itself() {
        let params = GroupParams::z2_32();
        let seed = [7u8; SEED_LEN];
        let mask = expand_mask(&seed, params, 32);
        let cancelled = mask.sub(&expand_mask(&seed, params, 32));
        assert!(cancelled.values().iter().all(|&v| v == 0));
    }

    #[test]
    fn expand_mask_into_matches_expand_mask() {
        let params = GroupParams::new(1_000_003);
        let seed = [11u8; SEED_LEN];
        let reference = expand_mask(&seed, params, 777);
        let mut scratch = vec![42u64; 9]; // stale contents must be cleared
        expand_mask_into(&seed, params, 777, &mut scratch);
        assert_eq!(scratch.as_slice(), reference.values());
    }

    #[test]
    fn random_seed_uses_rng_stream() {
        let mut rng1 = ChaCha20Rng::from_seed([5u8; 32]);
        let mut rng2 = ChaCha20Rng::from_seed([5u8; 32]);
        // Same RNG state yields the same seed; consecutive draws differ.
        assert_eq!(random_seed(&mut rng1), random_seed(&mut rng2));
        let next = random_seed(&mut rng1);
        assert_ne!(next, random_seed(&mut rng1));
    }
}
