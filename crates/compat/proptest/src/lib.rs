//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds without registry access, so this crate reimplements
//! the subset of the proptest 1.x API its property tests use: the
//! [`proptest!`] macro (`pat in strategy` argument syntax, optional
//! `#![proptest_config(...)]`), range and [`any`] strategies,
//! [`collection::vec`], and the `prop_assert*`/[`prop_assume!`] macros.
//!
//! Unlike real proptest there is no shrinking and no failure persistence:
//! each test runs a fixed number of deterministically seeded random cases
//! (seeded from the test's name, so failures are reproducible).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::ops::{Range, RangeInclusive};

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// The RNG driving case generation.
pub type TestRng = StdRng;

/// Deterministic per-test generator, seeded from the test name.
pub fn test_rng(test_name: &str) -> TestRng {
    let mut seed: u64 = 0xcbf29ce484222325;
    for byte in test_name.bytes() {
        seed ^= byte as u64;
        seed = seed.wrapping_mul(0x100000001b3);
    }
    StdRng::seed_from_u64(seed)
}

/// Why a single test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and should be skipped.
    Reject,
    /// An assertion failed.
    Fail(String),
}

impl TestCaseError {
    /// Creates a failure with a message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )+};
}

tuple_strategy!((A, B), (A, B, C), (A, B, C, D));

/// Types with a canonical "generate anything" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen::<u64>() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen::<bool>()
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_range(-1.0e6f32..1.0e6)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen_range(-1.0e12f64..1.0e12)
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

macro_rules! tuple_arbitrary {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        impl<$($name: Arbitrary),+> Arbitrary for ($($name,)+) {
            fn arbitrary(rng: &mut TestRng) -> Self {
                ($($name::arbitrary(rng),)+)
            }
        }
    )+};
}

tuple_arbitrary!((A, B), (A, B, C), (A, B, C, D));

/// Strategy generating arbitrary values of `T`.
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` strategy.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A range of collection sizes.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> Self {
            SizeRange {
                min: exact,
                max_exclusive: exact + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(range: Range<usize>) -> Self {
            assert!(range.start < range.end, "empty size range");
            SizeRange {
                min: range.start,
                max_exclusive: range.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(range: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *range.start(),
                max_exclusive: *range.end() + 1,
            }
        }
    }

    /// Strategy producing `Vec`s of values drawn from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.size.min..self.size.max_exclusive);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// The `proptest::collection::vec` strategy.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Everything the property tests import.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a property, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)*),
            left,
            right
        );
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "{} (both {:?})",
            format!($($fmt)*),
            left
        );
    }};
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests with `pat in strategy` arguments.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { config = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_body {
    (config = ($config:expr);) => {};
    (
        config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::test_rng(stringify!($name));
            for case in 0..config.cases {
                let outcome = {
                    $(let $pat = $crate::Strategy::sample(&($strategy), &mut rng);)+
                    (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                        $body
                        ::std::result::Result::Ok(())
                    })()
                };
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(message)) => {
                        panic!("property {} failed at case {}: {}", stringify!($name), case, message);
                    }
                }
            }
        }
        $crate::__proptest_body! { config = ($config); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..10, y in -5i32..=5, f in 0.25f64..0.75) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..=5).contains(&y));
            prop_assert!((0.25..0.75).contains(&f));
        }

        #[test]
        fn vectors_respect_size_ranges(
            v in collection::vec(any::<u8>(), 1..16),
            exact in collection::vec(0u64..100, 8),
            nested in collection::vec(collection::vec(0usize..4, 2), 1..4),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 16);
            prop_assert_eq!(exact.len(), 8);
            prop_assert!(nested.iter().all(|inner| inner.len() == 2));
        }

        #[test]
        fn assume_skips_cases(a in 0u32..10, b in 0u32..10) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
        }

        #[test]
        fn arrays_and_tuples(bytes in any::<[u8; 16]>(), pair in any::<(usize, u8)>()) {
            prop_assert_eq!(bytes.len(), 16);
            let (index, mask) = pair;
            prop_assert_eq!((index, mask), pair);
        }

        #[test]
        fn tuples_of_strategies_compose(
            triple in (0u8..4, 10usize..20, -1.0f64..1.0),
            pairs in collection::vec((0u32..8, 100u64..200), 1..6),
        ) {
            let (small, mid, frac) = triple;
            prop_assert!(small < 4 && (10..20).contains(&mid));
            prop_assert!((-1.0..1.0).contains(&frac));
            prop_assert!(pairs.iter().all(|&(a, b)| a < 8 && (100..200).contains(&b)));
        }

        #[test]
        fn mutable_bindings_work(mut data in collection::vec(any::<u8>(), 1..8)) {
            data[0] = data[0].wrapping_add(1);
            prop_assert!(!data.is_empty());
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(3))]

        #[test]
        fn config_limits_cases(x in 0u64..1000) {
            prop_assert!(x < 1000);
        }
    }

    #[test]
    fn deterministic_rng_per_test_name() {
        use rand::RngCore;
        let mut a = crate::test_rng("some_test");
        let mut b = crate::test_rng("some_test");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_rng("other_test");
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
