//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no network access to a crate
//! registry, so the subset of the `rand` 0.8 API the workspace actually uses
//! is reimplemented here: the [`RngCore`]/[`Rng`]/[`SeedableRng`] traits,
//! uniform range sampling, and a deterministic [`rngs::StdRng`] built on
//! xoshiro256++ seeded through SplitMix64.
//!
//! The generator is *not* stream-compatible with upstream `rand`; only the
//! statistical quality and the determinism guarantees the simulations rely on
//! are preserved.

use std::ops::{Range, RangeInclusive};

/// Error type returned by [`RngCore::try_fill_bytes`].
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "random number generator failure")
    }
}

impl std::error::Error for Error {}

/// The core of a random number generator.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
    /// Fallible variant of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// Types that can be sampled uniformly from the generator's full output
/// (the `Standard` distribution of upstream `rand`).
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u8 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as u8
    }
}

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform integer in `[0, bound)` by rejection sampling (unbiased).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    if bound.is_power_of_two() {
        return rng.next_u64() & (bound - 1);
    }
    let zone = u64::MAX - (u64::MAX % bound);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % bound;
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(uniform_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u64::MAX as u128 {
                    // Only reachable for the full u64/i64 domain.
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_below(rng, span as u64) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let unit = <$t as Standard>::sample(rng);
                let value = self.start + unit * (self.end - self.start);
                // `start + unit * span` can round up to exactly `end`; keep
                // the range half-open like upstream rand.
                if value < self.end {
                    value
                } else {
                    self.end.next_down().max(self.start)
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let unit = <$t as Standard>::sample(rng);
                start + unit * (end - start)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// User-facing random sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value from the standard distribution of `T`
    /// (floats uniform in `[0, 1)`, integers over the full domain).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// Seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` via SplitMix64 key expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        let bytes = seed.as_mut();
        let mut i = 0;
        while i < bytes.len() {
            let chunk = sm.next().to_le_bytes();
            let n = chunk.len().min(bytes.len() - i);
            bytes[i..i + n].copy_from_slice(&chunk[..n]);
            i += n;
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }

        /// The full internal state, for checkpointing.  Feeding it back
        /// through [`StdRng::from_state`] resumes the exact output stream.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a previously captured [`StdRng::state`].
        ///
        /// # Panics
        ///
        /// Panics on the all-zero state, which xoshiro cannot escape; it can
        /// only come from a hand-rolled value, never from `state()`.
        pub fn from_state(s: [u64; 4]) -> Self {
            assert!(s.iter().any(|&w| w != 0), "xoshiro state must be non-zero");
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // xoshiro must not start from the all-zero state.
            if s.iter().all(|&w| w == 0) {
                s = [0x9E3779B97F4A7C15, 0x6A09E667F3BCC909, 1, 2];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(0usize..=5);
            assert!(y <= 5);
            let f = rng.gen_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn unit_floats_are_uniformish() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let frac_low = (0..n).filter(|_| rng.gen::<f64>() < 0.25).count() as f64 / n as f64;
        assert!((frac_low - 0.25).abs() < 0.01, "frac {frac_low}");
    }

    #[test]
    fn fill_bytes_covers_partial_chunks() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        assert!(rng.try_fill_bytes(&mut buf).is_ok());
    }

    #[test]
    fn state_round_trips_through_checkpoint() {
        let mut a = StdRng::seed_from_u64(42);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        assert_eq!(a, b);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn all_zero_state_is_rejected() {
        let _ = StdRng::from_state([0; 4]);
    }

    #[test]
    fn negative_integer_ranges() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..1000 {
            let v = rng.gen_range(-10i64..10);
            assert!((-10..10).contains(&v));
        }
    }
}
