//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion 0.5 API the workspace's benches
//! use: [`Criterion`], benchmark groups, [`BenchmarkId`], [`Throughput`],
//! [`black_box`], and the [`criterion_group!`]/[`criterion_main!`] macros.
//! Timing is a simple best-of-N wall-clock measurement printed to stdout —
//! good enough to compare orders of magnitude without a registry dependency.

use std::time::{Duration, Instant};

/// Prevents the optimizer from eliding a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Label of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Creates an id from a parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl std::fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.id)
    }
}

/// Into-conversion so `bench_function` accepts both `&str` and `BenchmarkId`.
pub trait IntoBenchmarkId {
    /// The resulting label.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Throughput annotation for a benchmark group.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Measures one benchmark body.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, choosing the iteration count adaptively.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and calibration round.
        let start = Instant::now();
        black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(1));
        let target = Duration::from_millis(200);
        let iters = (target.as_nanos() / once.as_nanos()).clamp(1, 10_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
        self.iterations = iters;
    }
}

fn report(name: &str, bencher: &Bencher) {
    let per_iter = if bencher.iterations > 0 {
        bencher.elapsed / bencher.iterations as u32
    } else {
        Duration::ZERO
    };
    println!(
        "bench: {name:<50} {:>12.3?}/iter ({} iters)",
        per_iter, bencher.iterations
    );
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the sample size (accepted for API compatibility; unused).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the measurement time (accepted for API compatibility; unused).
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Annotates the group's throughput (accepted for API compatibility).
    pub fn throughput(&mut self, _throughput: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iterations: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id.into_id()), &bencher);
        self
    }

    /// Runs one parameterized benchmark in the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            iterations: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id.into_id()), &bencher);
        self
    }

    /// Finishes the group.
    pub fn finish(&mut self) {}
}

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            iterations: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        report(name, &bencher);
        self
    }

    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Accepted for API compatibility; unused.
    pub fn sample_size(self, _n: usize) -> Self {
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        let mut group = c.benchmark_group("group");
        group.sample_size(10).throughput(Throughput::Bytes(8));
        group.bench_function(BenchmarkId::from_parameter(4), |b| b.iter(|| 4 * 4));
        group.bench_with_input(BenchmarkId::new("sq", 3), &3u64, |b, &n| b.iter(|| n * n));
        group.finish();
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs() {
        benches();
    }
}
