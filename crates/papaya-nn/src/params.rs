//! Flat parameter vectors and the parameter-visiting API shared by layers and
//! optimizers.
//!
//! Federated learning moves *model deltas* around: a client computes
//! `delta = trained_params - initial_params`, the delta is (optionally masked
//! and) uploaded, the server aggregates deltas and feeds them to a server
//! optimizer.  [`ParamVec`] is that flat vector representation, with the
//! arithmetic and byte (de)serialization the rest of the stack needs.

use crate::tensor::Matrix;

/// A named, mutable view of one parameter tensor and its gradient buffer.
///
/// Layers hand out `Parameter`s so optimizers can update values in place and
/// training loops can zero or inspect gradients without knowing layer
/// internals.
#[derive(Debug)]
pub struct Parameter<'a> {
    /// Stable name used for debugging and state tracking.
    pub name: &'static str,
    /// The parameter values.
    pub value: &'a mut Matrix,
    /// The accumulated gradient, same shape as `value`.
    pub grad: &'a mut Matrix,
}

impl<'a> Parameter<'a> {
    /// Creates a parameter view.
    pub fn new(name: &'static str, value: &'a mut Matrix, grad: &'a mut Matrix) -> Self {
        debug_assert_eq!(value.shape(), grad.shape());
        Parameter { name, value, grad }
    }

    /// Zeroes the gradient buffer.
    pub fn zero_grad(&mut self) {
        for g in self.grad.data_mut() {
            *g = 0.0;
        }
    }
}

/// A flat `f32` parameter (or delta) vector.
///
/// # Example
///
/// ```
/// use papaya_nn::params::ParamVec;
/// let a = ParamVec::from_vec(vec![1.0, 2.0, 3.0]);
/// let b = ParamVec::from_vec(vec![0.5, 1.0, 1.5]);
/// let delta = a.sub(&b);
/// assert_eq!(delta.as_slice(), &[0.5, 1.0, 1.5]);
/// ```
#[derive(Clone, Debug, PartialEq, Default)]
pub struct ParamVec {
    data: Vec<f32>,
}

impl ParamVec {
    /// Creates a zero vector of the given length.
    pub fn zeros(len: usize) -> Self {
        ParamVec {
            data: vec![0.0; len],
        }
    }

    /// Wraps an existing vector.
    pub fn from_vec(data: Vec<f32>) -> Self {
        ParamVec { data }
    }

    /// Concatenates the values of a sequence of matrices into one flat vector.
    pub fn from_matrices<'m>(matrices: impl IntoIterator<Item = &'m Matrix>) -> Self {
        let mut data = Vec::new();
        for m in matrices {
            data.extend_from_slice(m.data());
        }
        ParamVec { data }
    }

    /// Splits the flat vector back into matrices with the given shapes.
    ///
    /// # Panics
    ///
    /// Panics if the total number of elements does not match.
    pub fn to_matrices(&self, shapes: &[(usize, usize)]) -> Vec<Matrix> {
        let total: usize = shapes.iter().map(|(r, c)| r * c).sum();
        assert_eq!(
            total,
            self.data.len(),
            "shape list covers {total} elements but vector has {}",
            self.data.len()
        );
        let mut out = Vec::with_capacity(shapes.len());
        let mut offset = 0;
        for &(r, c) in shapes {
            let n = r * c;
            out.push(Matrix::from_vec(
                r,
                c,
                self.data[offset..offset + n].to_vec(),
            ));
            offset += n;
        }
        out
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns true when the vector has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the scalars.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the scalars.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying storage.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element-wise difference `self - other`.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn sub(&self, other: &ParamVec) -> ParamVec {
        assert_eq!(self.len(), other.len(), "length mismatch");
        ParamVec {
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| a - b)
                .collect(),
        }
    }

    /// Element-wise sum `self + other`.
    pub fn add(&self, other: &ParamVec) -> ParamVec {
        assert_eq!(self.len(), other.len(), "length mismatch");
        ParamVec {
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        }
    }

    /// In-place `self += weight * other`.
    pub fn add_scaled(&mut self, other: &ParamVec, weight: f32) {
        assert_eq!(self.len(), other.len(), "length mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += weight * b;
        }
    }

    /// Multiplies every element by `factor` in place.
    pub fn scale(&mut self, factor: f32) {
        for a in self.data.iter_mut() {
            *a *= factor;
        }
    }

    /// L2 norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Serializes to little-endian `f32` bytes (the client's serialized model
    /// update; its length is the paper's "model size" in bytes).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.data.len() * 4);
        for v in &self.data {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Deserializes from little-endian `f32` bytes.
    ///
    /// # Panics
    ///
    /// Panics if the byte length is not a multiple of four.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert!(
            bytes.len().is_multiple_of(4),
            "byte length must be a multiple of 4"
        );
        let data = bytes
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
            .collect();
        ParamVec { data }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_to_matrices_roundtrip() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0, 7.0]]);
        let v = ParamVec::from_matrices([&a, &b]);
        assert_eq!(v.len(), 7);
        let restored = v.to_matrices(&[(2, 2), (1, 3)]);
        assert_eq!(restored[0], a);
        assert_eq!(restored[1], b);
    }

    #[test]
    fn arithmetic_ops() {
        let a = ParamVec::from_vec(vec![1.0, 2.0, 3.0]);
        let b = ParamVec::from_vec(vec![1.0, 1.0, 1.0]);
        assert_eq!(a.sub(&b).as_slice(), &[0.0, 1.0, 2.0]);
        assert_eq!(a.add(&b).as_slice(), &[2.0, 3.0, 4.0]);
        let mut c = a.clone();
        c.add_scaled(&b, 0.5);
        assert_eq!(c.as_slice(), &[1.5, 2.5, 3.5]);
        c.scale(2.0);
        assert_eq!(c.as_slice(), &[3.0, 5.0, 7.0]);
    }

    #[test]
    fn norm_matches_manual() {
        let a = ParamVec::from_vec(vec![3.0, 4.0]);
        assert!((a.norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn byte_roundtrip() {
        let a = ParamVec::from_vec(vec![1.5, -2.25, 0.0, f32::MIN_POSITIVE]);
        let bytes = a.to_bytes();
        assert_eq!(bytes.len(), 16);
        assert_eq!(ParamVec::from_bytes(&bytes), a);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let a = ParamVec::zeros(3);
        let b = ParamVec::zeros(4);
        let _ = a.sub(&b);
    }

    #[test]
    fn zero_grad_clears_buffer() {
        let mut value = Matrix::ones(2, 2);
        let mut grad = Matrix::ones(2, 2);
        let mut p = Parameter::new("w", &mut value, &mut grad);
        p.zero_grad();
        assert!(p.grad.data().iter().all(|&g| g == 0.0));
    }
}
