//! Weight initialization helpers.

use crate::tensor::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Xavier/Glorot uniform initialization: samples from
/// `U(-sqrt(6/(fan_in+fan_out)), +sqrt(6/(fan_in+fan_out)))`.
pub fn xavier_uniform(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let limit = (6.0 / (rows + cols) as f32).sqrt();
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-limit..limit))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

/// Uniform initialization in `[-limit, limit)`.
pub fn uniform(rows: usize, cols: usize, limit: f32, seed: u64) -> Matrix {
    let mut rng = StdRng::seed_from_u64(seed);
    let data = (0..rows * cols)
        .map(|_| rng.gen_range(-limit..limit))
        .collect();
    Matrix::from_vec(rows, cols, data)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_within_bounds() {
        let m = xavier_uniform(10, 20, 1);
        let limit = (6.0 / 30.0f32).sqrt();
        assert!(m.data().iter().all(|&x| x > -limit && x < limit));
    }

    #[test]
    fn deterministic_for_same_seed() {
        assert_eq!(xavier_uniform(4, 4, 7), xavier_uniform(4, 4, 7));
        assert_ne!(xavier_uniform(4, 4, 7), xavier_uniform(4, 4, 8));
    }

    #[test]
    fn uniform_respects_limit() {
        let m = uniform(5, 5, 0.1, 3);
        assert!(m.data().iter().all(|&x| x.abs() <= 0.1));
    }
}
