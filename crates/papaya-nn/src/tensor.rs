//! Row-major 2-D matrices and the small set of operations the layers need.

use std::fmt;

/// A dense, row-major matrix of `f32` values.
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 16 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with ones.
    pub fn ones(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![1.0; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} does not match {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or there are no rows.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "inconsistent row lengths");
            data.extend_from_slice(row);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Returns `(rows, cols)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Immutable access to the underlying row-major data.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the underlying row-major data.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Element access.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Returns row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Returns row `r` as a mutable slice.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Matrix multiplication `self (m×k) * other (k×n) -> (m×n)`.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions do not agree.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Multiplication with `other` transposed: `self (m×k) * other^T (n×k) -> (m×n)`.
    pub fn matmul_transpose_b(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose_b dimension mismatch"
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            for j in 0..other.rows {
                let mut acc = 0.0;
                let a_row = &self.data[i * self.cols..(i + 1) * self.cols];
                let b_row = &other.data[j * other.cols..(j + 1) * other.cols];
                for (a, b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                out.data[i * other.rows + j] = acc;
            }
        }
        out
    }

    /// Multiplication with `self` transposed: `self^T (k×m) * other (k×n)? `
    /// — precisely: treats `self` as `(k×m)` stored as `(rows=k, cols=m)` and
    /// computes `self^T * other` where `other` is `(k×n)`, yielding `(m×n)`.
    pub fn matmul_transpose_a(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.rows, other.rows,
            "matmul_transpose_a dimension mismatch"
        );
        let mut out = Matrix::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            for i in 0..self.cols {
                let a = self.data[k * self.cols + i];
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                let b_row = &other.data[k * other.cols..(k + 1) * other.cols];
                for (o, b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Returns the transpose of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise addition.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "add shape mismatch");
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place element-wise addition.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape(), "add_assign shape mismatch");
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
    }

    /// Element-wise subtraction.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "sub shape mismatch");
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a - b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "hadamard shape mismatch");
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&self, factor: f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|a| a * factor).collect(),
        }
    }

    /// Adds a row vector (1×cols) to every row.
    ///
    /// # Panics
    ///
    /// Panics if `bias` is not a single row of matching width.
    pub fn add_row_broadcast(&self, bias: &Matrix) -> Matrix {
        assert_eq!(bias.rows, 1, "bias must be a single row");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for c in 0..out.cols {
                out.data[r * out.cols + c] += bias.data[c];
            }
        }
        out
    }

    /// Sums the rows, producing a 1×cols matrix.
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c] += self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Applies a function to every element.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

/// Numerically stable sigmoid.
#[inline]
pub fn sigmoid(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}

/// Hyperbolic tangent (re-exported for symmetry with [`sigmoid`]).
#[inline]
pub fn tanh(x: f32) -> f32 {
    x.tanh()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_values() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_identity() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let mut id = Matrix::zeros(3, 3);
        for i in 0..3 {
            id.set(i, i, 1.0);
        }
        assert_eq!(a.matmul(&id), a);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn matmul_transpose_variants_agree_with_explicit_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, -2.0, 0.5], vec![3.0, 4.0, -1.0]]);
        let b = Matrix::from_rows(&[vec![2.0, 0.0, 1.0], vec![1.0, -1.0, 3.0]]);
        // a (2x3) * b^T (3x2) == matmul_transpose_b
        assert_eq!(a.matmul_transpose_b(&b), a.matmul(&b.transpose()));
        // a^T (3x2) * b (2x3)? -> matmul_transpose_a where both have same row count
        let c = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let d = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![2.0, 2.0]]);
        assert_eq!(c.matmul_transpose_a(&d), c.transpose().matmul(&d));
    }

    #[test]
    fn add_sub_hadamard_scale() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 5.0]]);
        assert_eq!(a.add(&b).data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).data(), &[2.0, 3.0]);
        assert_eq!(a.hadamard(&b).data(), &[3.0, 10.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0]);
    }

    #[test]
    fn broadcast_and_sum_rows() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let bias = Matrix::from_rows(&[vec![10.0, 20.0]]);
        assert_eq!(a.add_row_broadcast(&bias).data(), &[11.0, 22.0, 13.0, 24.0]);
        assert_eq!(a.sum_rows().data(), &[4.0, 6.0]);
    }

    #[test]
    fn sigmoid_bounds_and_symmetry() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-6);
        assert!(sigmoid(100.0) > 0.999);
        assert!(sigmoid(-100.0) < 0.001);
        assert!((sigmoid(2.0) + sigmoid(-2.0) - 1.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_length_mismatch_panics() {
        let _ = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }
}
