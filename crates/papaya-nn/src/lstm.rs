//! A single-layer LSTM cell with backpropagation through time.
//!
//! The paper's evaluation trains an LSTM-based language model (Kim et al.,
//! 2015).  This module implements the standard LSTM recurrence with combined
//! gate matrices and explicit, cache-based BPTT.  Gate ordering in the
//! combined matrices is `[input, forget, cell(g), output]`.

use crate::init::xavier_uniform;
use crate::params::Parameter;
use crate::tensor::{sigmoid, Matrix};

/// Cached activations for one time step, needed by the backward pass.
#[derive(Clone, Debug)]
struct StepCache {
    input: Matrix,
    h_prev: Matrix,
    c_prev: Matrix,
    i: Matrix,
    f: Matrix,
    g: Matrix,
    o: Matrix,
    c: Matrix,
}

/// The hidden state of an LSTM: `(h, c)` pair, each `(batch, hidden)`.
#[derive(Clone, Debug, PartialEq)]
pub struct LstmState {
    /// Hidden output state.
    pub h: Matrix,
    /// Cell state.
    pub c: Matrix,
}

impl LstmState {
    /// Zero-initialized state for the given batch size and hidden width.
    pub fn zeros(batch: usize, hidden: usize) -> Self {
        LstmState {
            h: Matrix::zeros(batch, hidden),
            c: Matrix::zeros(batch, hidden),
        }
    }
}

/// A single LSTM cell processing one time step at a time.
#[derive(Clone, Debug)]
pub struct LstmCell {
    /// Input-to-gates weights, `(input_dim, 4*hidden)`.
    w_x: Matrix,
    /// Hidden-to-gates weights, `(hidden, 4*hidden)`.
    w_h: Matrix,
    /// Gate biases, `(1, 4*hidden)`.
    bias: Matrix,
    w_x_grad: Matrix,
    w_h_grad: Matrix,
    bias_grad: Matrix,
    hidden: usize,
    caches: Vec<StepCache>,
}

impl LstmCell {
    /// Creates an LSTM cell.  The forget-gate bias is initialized to 1.0,
    /// the standard trick for stable early training.
    pub fn new(input_dim: usize, hidden: usize, seed: u64) -> Self {
        let mut bias = Matrix::zeros(1, 4 * hidden);
        for j in hidden..2 * hidden {
            bias.set(0, j, 1.0);
        }
        LstmCell {
            w_x: xavier_uniform(input_dim, 4 * hidden, seed),
            w_h: xavier_uniform(hidden, 4 * hidden, seed.wrapping_add(1)),
            bias,
            w_x_grad: Matrix::zeros(input_dim, 4 * hidden),
            w_h_grad: Matrix::zeros(hidden, 4 * hidden),
            bias_grad: Matrix::zeros(1, 4 * hidden),
            hidden,
            caches: Vec::new(),
        }
    }

    /// Hidden width.
    pub fn hidden_size(&self) -> usize {
        self.hidden
    }

    /// Input width.
    pub fn input_size(&self) -> usize {
        self.w_x.rows()
    }

    /// Runs one time step, caching activations for BPTT.
    pub fn step(&mut self, input: &Matrix, state: &LstmState) -> LstmState {
        let (new_state, cache) = self.step_internal(input, state);
        self.caches.push(cache);
        new_state
    }

    /// Runs one time step without caching (for evaluation).
    pub fn step_inference(&self, input: &Matrix, state: &LstmState) -> LstmState {
        self.step_internal(input, state).0
    }

    fn step_internal(&self, input: &Matrix, state: &LstmState) -> (LstmState, StepCache) {
        let batch = input.rows();
        let h = self.hidden;
        let gates = input
            .matmul(&self.w_x)
            .add(&state.h.matmul(&self.w_h))
            .add_row_broadcast(&self.bias);

        let mut i = Matrix::zeros(batch, h);
        let mut f = Matrix::zeros(batch, h);
        let mut g = Matrix::zeros(batch, h);
        let mut o = Matrix::zeros(batch, h);
        for b in 0..batch {
            for j in 0..h {
                i.set(b, j, sigmoid(gates.get(b, j)));
                f.set(b, j, sigmoid(gates.get(b, h + j)));
                g.set(b, j, gates.get(b, 2 * h + j).tanh());
                o.set(b, j, sigmoid(gates.get(b, 3 * h + j)));
            }
        }
        let c = f.hadamard(&state.c).add(&i.hadamard(&g));
        let h_out = o.hadamard(&c.map(|x| x.tanh()));
        let cache = StepCache {
            input: input.clone(),
            h_prev: state.h.clone(),
            c_prev: state.c.clone(),
            i,
            f,
            g,
            o,
            c: c.clone(),
        };
        (LstmState { h: h_out, c }, cache)
    }

    /// Backpropagates through the most recent cached step.
    ///
    /// `grad_h` and `grad_c` are gradients flowing into this step's output
    /// state; returns `(grad_input, grad_h_prev, grad_c_prev)`.
    ///
    /// # Panics
    ///
    /// Panics if there is no cached step (more backward calls than forward
    /// steps).
    pub fn backward_step(&mut self, grad_h: &Matrix, grad_c: &Matrix) -> (Matrix, Matrix, Matrix) {
        let cache = self
            .caches
            .pop()
            // papaya-lint: allow(panic-hygiene) -- documented panic: more backward than forward steps is a training-loop sequencing bug
            .expect("backward_step called with no cached forward step");
        let h = self.hidden;
        let batch = grad_h.rows();

        let tanh_c = cache.c.map(|x| x.tanh());
        // dL/do = dL/dh * tanh(c)
        let grad_o = grad_h.hadamard(&tanh_c);
        // dL/dc (total) = dL/dc_next + dL/dh * o * (1 - tanh^2(c))
        let grad_c_total = grad_c.add(
            &grad_h
                .hadamard(&cache.o)
                .hadamard(&tanh_c.map(|t| 1.0 - t * t)),
        );
        let grad_i = grad_c_total.hadamard(&cache.g);
        let grad_g = grad_c_total.hadamard(&cache.i);
        let grad_f = grad_c_total.hadamard(&cache.c_prev);
        let grad_c_prev = grad_c_total.hadamard(&cache.f);

        // Pre-activation gradients.
        let mut grad_gates = Matrix::zeros(batch, 4 * h);
        for b in 0..batch {
            for j in 0..h {
                let di = grad_i.get(b, j) * cache.i.get(b, j) * (1.0 - cache.i.get(b, j));
                let df = grad_f.get(b, j) * cache.f.get(b, j) * (1.0 - cache.f.get(b, j));
                let dg = grad_g.get(b, j) * (1.0 - cache.g.get(b, j) * cache.g.get(b, j));
                let do_ = grad_o.get(b, j) * cache.o.get(b, j) * (1.0 - cache.o.get(b, j));
                grad_gates.set(b, j, di);
                grad_gates.set(b, h + j, df);
                grad_gates.set(b, 2 * h + j, dg);
                grad_gates.set(b, 3 * h + j, do_);
            }
        }

        self.w_x_grad
            .add_assign(&cache.input.matmul_transpose_a(&grad_gates));
        self.w_h_grad
            .add_assign(&cache.h_prev.matmul_transpose_a(&grad_gates));
        self.bias_grad.add_assign(&grad_gates.sum_rows());

        let grad_input = grad_gates.matmul_transpose_b(&self.w_x);
        let grad_h_prev = grad_gates.matmul_transpose_b(&self.w_h);
        (grad_input, grad_h_prev, grad_c_prev)
    }

    /// Clears cached activations (e.g. between sequences).
    pub fn clear_cache(&mut self) {
        self.caches.clear();
    }

    /// Number of cached (not yet back-propagated) steps.
    pub fn cached_steps(&self) -> usize {
        self.caches.len()
    }

    /// Mutable parameter views for optimizers.
    pub fn parameters_mut(&mut self) -> Vec<Parameter<'_>> {
        vec![
            Parameter::new("lstm.w_x", &mut self.w_x, &mut self.w_x_grad),
            Parameter::new("lstm.w_h", &mut self.w_h, &mut self.w_h_grad),
            Parameter::new("lstm.bias", &mut self.bias, &mut self.bias_grad),
        ]
    }

    /// Parameter matrices by reference (`w_x`, `w_h`, `bias`).
    pub fn parameter_matrices(&self) -> Vec<&Matrix> {
        vec![&self.w_x, &self.w_h, &self.bias]
    }

    /// Overwrites parameters (same order as [`LstmCell::parameter_matrices`]).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn set_parameter_matrices(&mut self, matrices: &[Matrix]) {
        assert_eq!(matrices.len(), 3, "expected w_x, w_h, bias");
        assert_eq!(matrices[0].shape(), self.w_x.shape());
        assert_eq!(matrices[1].shape(), self.w_h.shape());
        assert_eq!(matrices[2].shape(), self.bias.shape());
        self.w_x = matrices[0].clone();
        self.w_h = matrices[1].clone();
        self.bias = matrices[2].clone();
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grad(&mut self) {
        for m in [&mut self.w_x_grad, &mut self.w_h_grad, &mut self.bias_grad] {
            for g in m.data_mut() {
                *g = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Scalar loss used by the gradient checks: sum of all h outputs over a
    /// short unrolled sequence.
    fn sequence_loss(cell: &LstmCell, inputs: &[Matrix]) -> f32 {
        let mut state = LstmState::zeros(inputs[0].rows(), cell.hidden_size());
        let mut loss = 0.0;
        for x in inputs {
            state = cell.step_inference(x, &state);
            loss += state.h.data().iter().sum::<f32>();
        }
        loss
    }

    fn run_backward(cell: &mut LstmCell, inputs: &[Matrix]) {
        let batch = inputs[0].rows();
        let hidden = cell.hidden_size();
        let mut state = LstmState::zeros(batch, hidden);
        for x in inputs {
            state = cell.step(x, &state);
        }
        // d(loss)/dh_t = 1 at every step; accumulate through BPTT.
        let mut grad_h = Matrix::ones(batch, hidden);
        let mut grad_c = Matrix::zeros(batch, hidden);
        for _ in 0..inputs.len() {
            let (_, gh_prev, gc_prev) = cell.backward_step(&grad_h, &grad_c);
            grad_h = gh_prev.add(&Matrix::ones(batch, hidden));
            grad_c = gc_prev;
        }
    }

    #[test]
    fn parameter_gradient_check() {
        let mut cell = LstmCell::new(3, 2, 7);
        let inputs = vec![
            Matrix::from_rows(&[vec![0.5, -0.2, 0.1], vec![1.0, 0.3, -0.4]]),
            Matrix::from_rows(&[vec![-0.1, 0.8, 0.2], vec![0.4, -0.6, 0.9]]),
            Matrix::from_rows(&[vec![0.3, 0.3, -0.5], vec![-0.2, 0.1, 0.7]]),
        ];
        run_backward(&mut cell, &inputs);
        let analytic_wx = cell.w_x_grad.clone();
        let analytic_wh = cell.w_h_grad.clone();
        let analytic_b = cell.bias_grad.clone();

        let eps = 1e-2f32;
        // Spot check a handful of entries in each parameter.
        for (r, c) in [(0usize, 0usize), (1, 3), (2, 5), (0, 7)] {
            let orig = cell.w_x.get(r, c);
            cell.w_x.set(r, c, orig + eps);
            let lp = sequence_loss(&cell, &inputs);
            cell.w_x.set(r, c, orig - eps);
            let lm = sequence_loss(&cell, &inputs);
            cell.w_x.set(r, c, orig);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = analytic_wx.get(r, c);
            assert!(
                (numeric - analytic).abs() < 3e-2 * (1.0 + analytic.abs()),
                "w_x grad mismatch at ({r},{c}): numeric {numeric}, analytic {analytic}"
            );
        }
        for (r, c) in [(0usize, 0usize), (1, 2), (0, 6)] {
            let orig = cell.w_h.get(r, c);
            cell.w_h.set(r, c, orig + eps);
            let lp = sequence_loss(&cell, &inputs);
            cell.w_h.set(r, c, orig - eps);
            let lm = sequence_loss(&cell, &inputs);
            cell.w_h.set(r, c, orig);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = analytic_wh.get(r, c);
            assert!(
                (numeric - analytic).abs() < 3e-2 * (1.0 + analytic.abs()),
                "w_h grad mismatch at ({r},{c}): numeric {numeric}, analytic {analytic}"
            );
        }
        for c in [0usize, 2, 5, 7] {
            let orig = cell.bias.get(0, c);
            cell.bias.set(0, c, orig + eps);
            let lp = sequence_loss(&cell, &inputs);
            cell.bias.set(0, c, orig - eps);
            let lm = sequence_loss(&cell, &inputs);
            cell.bias.set(0, c, orig);
            let numeric = (lp - lm) / (2.0 * eps);
            let analytic = analytic_b.get(0, c);
            assert!(
                (numeric - analytic).abs() < 3e-2 * (1.0 + analytic.abs()),
                "bias grad mismatch at column {c}: numeric {numeric}, analytic {analytic}"
            );
        }
    }

    #[test]
    fn input_gradient_check_single_step() {
        let mut cell = LstmCell::new(2, 3, 11);
        let input = Matrix::from_rows(&[vec![0.4, -0.9]]);
        let state = LstmState::zeros(1, 3);
        let _ = cell.step(&input, &state);
        let (grad_input, _, _) = cell.backward_step(&Matrix::ones(1, 3), &Matrix::zeros(1, 3));

        let eps = 1e-2f32;
        for c in 0..2 {
            let mut plus = input.clone();
            plus.set(0, c, plus.get(0, c) + eps);
            let mut minus = input.clone();
            minus.set(0, c, minus.get(0, c) - eps);
            let lp: f32 = cell.step_inference(&plus, &state).h.data().iter().sum();
            let lm: f32 = cell.step_inference(&minus, &state).h.data().iter().sum();
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - grad_input.get(0, c)).abs() < 1e-2,
                "input grad mismatch at {c}"
            );
        }
    }

    #[test]
    fn state_shapes_are_stable() {
        let mut cell = LstmCell::new(4, 8, 0);
        let state = LstmState::zeros(2, 8);
        let out = cell.step(&Matrix::zeros(2, 4), &state);
        assert_eq!(out.h.shape(), (2, 8));
        assert_eq!(out.c.shape(), (2, 8));
        assert_eq!(cell.cached_steps(), 1);
        cell.clear_cache();
        assert_eq!(cell.cached_steps(), 0);
    }

    #[test]
    fn forget_bias_initialized_to_one() {
        let cell = LstmCell::new(2, 3, 0);
        let bias = cell.parameter_matrices()[2];
        for j in 3..6 {
            assert_eq!(bias.get(0, j), 1.0);
        }
        for j in 0..3 {
            assert_eq!(bias.get(0, j), 0.0);
        }
    }

    #[test]
    #[should_panic(expected = "no cached forward step")]
    fn backward_without_forward_panics() {
        let mut cell = LstmCell::new(2, 2, 0);
        let _ = cell.backward_step(&Matrix::ones(1, 2), &Matrix::zeros(1, 2));
    }
}
