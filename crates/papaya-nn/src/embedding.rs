//! Token-embedding lookup table.

use crate::init::uniform;
use crate::params::Parameter;
use crate::tensor::Matrix;

/// An embedding layer mapping token ids to dense vectors.
///
/// The forward pass gathers rows of the embedding table; the backward pass
/// scatters the output gradient back into those rows.
#[derive(Clone, Debug)]
pub struct Embedding {
    table: Matrix,
    table_grad: Matrix,
    cached_ids: Option<Vec<usize>>,
}

impl Embedding {
    /// Creates an embedding table of `vocab_size` rows and `dim` columns,
    /// initialized uniformly in `[-0.1, 0.1)`.
    pub fn new(vocab_size: usize, dim: usize, seed: u64) -> Self {
        Embedding {
            table: uniform(vocab_size, dim, 0.1, seed),
            table_grad: Matrix::zeros(vocab_size, dim),
            cached_ids: None,
        }
    }

    /// Vocabulary size.
    pub fn vocab_size(&self) -> usize {
        self.table.rows()
    }

    /// Embedding dimensionality.
    pub fn dim(&self) -> usize {
        self.table.cols()
    }

    /// Looks up `ids`, producing an `(ids.len(), dim)` matrix; caches the ids
    /// for the backward pass.
    ///
    /// # Panics
    ///
    /// Panics if an id is out of range.
    pub fn forward(&mut self, ids: &[usize]) -> Matrix {
        let out = self.forward_inference(ids);
        self.cached_ids = Some(ids.to_vec());
        out
    }

    /// Lookup without caching.
    pub fn forward_inference(&self, ids: &[usize]) -> Matrix {
        let dim = self.dim();
        let mut out = Matrix::zeros(ids.len(), dim);
        for (row, &id) in ids.iter().enumerate() {
            assert!(id < self.vocab_size(), "token id {id} out of range");
            out.row_mut(row).copy_from_slice(self.table.row(id));
        }
        out
    }

    /// Scatters `grad_output` back into the embedding-table gradient.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Embedding::forward`].
    pub fn backward(&mut self, grad_output: &Matrix) {
        let ids = self
            .cached_ids
            .as_ref()
            // papaya-lint: allow(panic-hygiene) -- documented panic: backward before forward is a training-loop sequencing bug
            .expect("backward called before forward");
        assert_eq!(grad_output.rows(), ids.len());
        for (row, &id) in ids.iter().enumerate() {
            let grad_row = grad_output.row(row);
            let table_row = self.table_grad.row_mut(id);
            for (t, g) in table_row.iter_mut().zip(grad_row.iter()) {
                *t += g;
            }
        }
    }

    /// Mutable parameter views for optimizers.
    pub fn parameters_mut(&mut self) -> Vec<Parameter<'_>> {
        vec![Parameter::new(
            "embedding.table",
            &mut self.table,
            &mut self.table_grad,
        )]
    }

    /// Parameter matrices by reference.
    pub fn parameter_matrices(&self) -> Vec<&Matrix> {
        vec![&self.table]
    }

    /// Overwrites the table from `matrices[0]`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn set_parameter_matrices(&mut self, matrices: &[Matrix]) {
        assert_eq!(matrices.len(), 1, "expected a single table matrix");
        assert_eq!(matrices[0].shape(), self.table.shape());
        self.table = matrices[0].clone();
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grad(&mut self) {
        for g in self.table_grad.data_mut() {
            *g = 0.0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_returns_table_rows() {
        let emb = Embedding::new(5, 3, 0);
        let out = emb.forward_inference(&[2, 4, 2]);
        assert_eq!(out.row(0), emb.parameter_matrices()[0].row(2));
        assert_eq!(out.row(1), emb.parameter_matrices()[0].row(4));
        assert_eq!(out.row(0), out.row(2));
    }

    #[test]
    fn backward_accumulates_per_row() {
        let mut emb = Embedding::new(4, 2, 1);
        let _ = emb.forward(&[1, 1, 3]);
        let grad = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        emb.backward(&grad);
        // Row 1 gets both the first and second gradient rows.
        assert_eq!(emb.table_grad.row(1), &[4.0, 6.0]);
        assert_eq!(emb.table_grad.row(3), &[5.0, 6.0]);
        assert_eq!(emb.table_grad.row(0), &[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_id_panics() {
        let emb = Embedding::new(3, 2, 0);
        let _ = emb.forward_inference(&[3]);
    }

    #[test]
    fn zero_grad_resets() {
        let mut emb = Embedding::new(3, 2, 0);
        let _ = emb.forward(&[0]);
        emb.backward(&Matrix::ones(1, 2));
        emb.zero_grad();
        assert!(emb.table_grad.data().iter().all(|&g| g == 0.0));
    }
}
