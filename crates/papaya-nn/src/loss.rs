//! Losses: softmax cross-entropy (the language-model training loss) and mean
//! squared error (used by the surrogate objectives).

use crate::tensor::Matrix;

/// Computes the mean softmax cross-entropy loss over a batch of logits and
/// integer targets, together with the gradient with respect to the logits.
///
/// `logits` is `(batch, classes)`, `targets` has `batch` entries.
///
/// Returns `(mean_loss, grad_logits)` where the gradient already includes the
/// `1/batch` factor.
///
/// # Panics
///
/// Panics if the batch sizes disagree or a target is out of range.
pub fn softmax_cross_entropy(logits: &Matrix, targets: &[usize]) -> (f32, Matrix) {
    let (batch, classes) = logits.shape();
    assert_eq!(batch, targets.len(), "batch size mismatch");
    let mut grad = Matrix::zeros(batch, classes);
    let mut total_loss = 0.0f64;
    for (b, &target) in targets.iter().enumerate() {
        assert!(target < classes, "target {target} out of range");
        let row = logits.row(b);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exp: Vec<f32> = row.iter().map(|&x| (x - max).exp()).collect();
        let sum: f32 = exp.iter().sum();
        let log_sum = sum.ln() + max;
        total_loss += (log_sum - row[target]) as f64;
        let grad_row = grad.row_mut(b);
        for (c, e) in exp.iter().enumerate() {
            grad_row[c] = e / sum / batch as f32;
        }
        grad_row[target] -= 1.0 / batch as f32;
    }
    ((total_loss / batch as f64) as f32, grad)
}

/// Computes softmax probabilities row-wise (for evaluation / sampling).
pub fn softmax(logits: &Matrix) -> Matrix {
    let (batch, classes) = logits.shape();
    let mut out = Matrix::zeros(batch, classes);
    for b in 0..batch {
        let row = logits.row(b);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let exp: Vec<f32> = row.iter().map(|&x| (x - max).exp()).collect();
        let sum: f32 = exp.iter().sum();
        let out_row = out.row_mut(b);
        for (c, e) in exp.iter().enumerate() {
            out_row[c] = e / sum;
        }
    }
    out
}

/// Mean squared error `mean((pred - target)^2)` and its gradient w.r.t.
/// `pred` (including the `2/n` factor).
///
/// # Panics
///
/// Panics on shape mismatch.
pub fn mean_squared_error(pred: &Matrix, target: &Matrix) -> (f32, Matrix) {
    assert_eq!(pred.shape(), target.shape(), "shape mismatch");
    let n = (pred.rows() * pred.cols()) as f32;
    let diff = pred.sub(target);
    let loss = diff.data().iter().map(|d| d * d).sum::<f32>() / n;
    let grad = diff.scale(2.0 / n);
    (loss, grad)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_classes() {
        let logits = Matrix::zeros(2, 4);
        let (loss, _) = softmax_cross_entropy(&logits, &[0, 3]);
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn perfect_prediction_has_low_loss() {
        let mut logits = Matrix::zeros(1, 3);
        logits.set(0, 1, 50.0);
        let (loss, _) = softmax_cross_entropy(&logits, &[1]);
        assert!(loss < 1e-4);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Matrix::from_rows(&[vec![0.2, -0.5, 1.0], vec![0.0, 0.3, -0.7]]);
        let targets = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &targets);
        let eps = 1e-3f32;
        for r in 0..2 {
            for c in 0..3 {
                let mut plus = logits.clone();
                plus.set(r, c, plus.get(r, c) + eps);
                let mut minus = logits.clone();
                minus.set(r, c, minus.get(r, c) - eps);
                let (lp, _) = softmax_cross_entropy(&plus, &targets);
                let (lm, _) = softmax_cross_entropy(&minus, &targets);
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (numeric - grad.get(r, c)).abs() < 1e-3,
                    "grad mismatch at ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Matrix::from_rows(&[vec![1.0, 2.0, 3.0, -1.0]]);
        let (_, grad) = softmax_cross_entropy(&logits, &[1]);
        let sum: f32 = grad.row(0).iter().sum();
        assert!(sum.abs() < 1e-6);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let logits = Matrix::from_rows(&[vec![1.0, -2.0, 0.5], vec![100.0, 99.0, 98.0]]);
        let p = softmax(&logits);
        for r in 0..2 {
            let s: f32 = p.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(p.row(r).iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let logits = Matrix::from_rows(&[vec![1000.0, 1000.0]]);
        let p = softmax(&logits);
        assert!((p.get(0, 0) - 0.5).abs() < 1e-6);
    }

    #[test]
    fn mse_known_value_and_gradient() {
        let pred = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let target = Matrix::from_rows(&[vec![0.0, 0.0]]);
        let (loss, grad) = mean_squared_error(&pred, &target);
        assert!((loss - 2.5).abs() < 1e-6);
        assert_eq!(grad.data(), &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_target_panics() {
        let logits = Matrix::zeros(1, 2);
        let _ = softmax_cross_entropy(&logits, &[2]);
    }
}
