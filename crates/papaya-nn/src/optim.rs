//! Client-side optimizers.
//!
//! The paper uses plain SGD on clients and FedAdam on the server.  The
//! server-side optimizers (which operate on aggregated *deltas* rather than
//! gradients) live in `papaya-core::server_opt`; the optimizers here update a
//! model's own parameters from its accumulated gradients during local
//! training.

use crate::params::Parameter;

/// A gradient-based parameter update rule.
pub trait Optimizer {
    /// Applies one update step to the given parameters using their
    /// accumulated gradients, then leaves the gradients untouched (callers
    /// decide when to zero them).
    fn step(&mut self, params: &mut [Parameter<'_>]);
}

/// Stochastic gradient descent with optional momentum and gradient clipping.
#[derive(Clone, Debug)]
pub struct Sgd {
    learning_rate: f32,
    momentum: f32,
    /// Per-parameter velocity buffers, keyed by position in the parameter
    /// slice (the parameter order of a model is stable).
    velocities: Vec<Vec<f32>>,
    max_grad_norm: Option<f32>,
}

impl Sgd {
    /// Plain SGD with the given learning rate.
    pub fn new(learning_rate: f32) -> Self {
        Sgd {
            learning_rate,
            momentum: 0.0,
            velocities: Vec::new(),
            max_grad_norm: None,
        }
    }

    /// SGD with momentum.
    pub fn with_momentum(learning_rate: f32, momentum: f32) -> Self {
        Sgd {
            momentum,
            ..Sgd::new(learning_rate)
        }
    }

    /// Enables global gradient-norm clipping.
    pub fn with_clipping(mut self, max_grad_norm: f32) -> Self {
        self.max_grad_norm = Some(max_grad_norm);
        self
    }

    /// The configured learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.learning_rate
    }
}

fn global_grad_norm(params: &[Parameter<'_>]) -> f32 {
    params
        .iter()
        .map(|p| p.grad.data().iter().map(|g| g * g).sum::<f32>())
        .sum::<f32>()
        .sqrt()
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [Parameter<'_>]) {
        let clip_scale = match self.max_grad_norm {
            Some(max) => {
                let norm = global_grad_norm(params);
                if norm > max {
                    max / norm
                } else {
                    1.0
                }
            }
            None => 1.0,
        };
        if self.velocities.len() < params.len() {
            for p in params.iter().skip(self.velocities.len()) {
                self.velocities.push(vec![0.0; p.value.data().len()]);
            }
        }
        for (idx, p) in params.iter_mut().enumerate() {
            let velocity = &mut self.velocities[idx];
            for ((v, g), val) in velocity
                .iter_mut()
                .zip(p.grad.data().iter())
                .zip(p.value.data_mut().iter_mut())
            {
                let g = g * clip_scale;
                if self.momentum > 0.0 {
                    *v = self.momentum * *v + g;
                    *val -= self.learning_rate * *v;
                } else {
                    *val -= self.learning_rate * g;
                }
            }
        }
    }
}

/// Adam (Kingma & Ba, 2015).
#[derive(Clone, Debug)]
pub struct Adam {
    learning_rate: f32,
    beta1: f32,
    beta2: f32,
    epsilon: f32,
    step_count: u64,
    first_moments: Vec<Vec<f32>>,
    second_moments: Vec<Vec<f32>>,
}

impl Adam {
    /// Adam with the standard defaults (β₁ = 0.9, β₂ = 0.999, ε = 1e-8).
    pub fn new(learning_rate: f32) -> Self {
        Self::with_betas(learning_rate, 0.9, 0.999, 1e-8)
    }

    /// Adam with explicit moment parameters.
    pub fn with_betas(learning_rate: f32, beta1: f32, beta2: f32, epsilon: f32) -> Self {
        Adam {
            learning_rate,
            beta1,
            beta2,
            epsilon,
            step_count: 0,
            first_moments: Vec::new(),
            second_moments: Vec::new(),
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [Parameter<'_>]) {
        self.step_count += 1;
        if self.first_moments.len() < params.len() {
            for p in params.iter().skip(self.first_moments.len()) {
                self.first_moments.push(vec![0.0; p.value.data().len()]);
                self.second_moments.push(vec![0.0; p.value.data().len()]);
            }
        }
        let bc1 = 1.0 - self.beta1.powi(self.step_count as i32);
        let bc2 = 1.0 - self.beta2.powi(self.step_count as i32);
        for (idx, p) in params.iter_mut().enumerate() {
            let m = &mut self.first_moments[idx];
            let v = &mut self.second_moments[idx];
            for (((m_i, v_i), g), val) in m
                .iter_mut()
                .zip(v.iter_mut())
                .zip(p.grad.data().iter())
                .zip(p.value.data_mut().iter_mut())
            {
                *m_i = self.beta1 * *m_i + (1.0 - self.beta1) * g;
                *v_i = self.beta2 * *v_i + (1.0 - self.beta2) * g * g;
                let m_hat = *m_i / bc1;
                let v_hat = *v_i / bc2;
                *val -= self.learning_rate * m_hat / (v_hat.sqrt() + self.epsilon);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Matrix;

    /// Minimizes f(x) = (x - 3)^2 with each optimizer and checks convergence.
    fn quadratic_converges(mut opt: impl Optimizer, steps: usize, lr_tolerance: f32) {
        let mut value = Matrix::from_rows(&[vec![10.0]]);
        let mut grad = Matrix::zeros(1, 1);
        for _ in 0..steps {
            let x = value.get(0, 0);
            grad.set(0, 0, 2.0 * (x - 3.0));
            let mut params = vec![Parameter::new("x", &mut value, &mut grad)];
            opt.step(&mut params);
        }
        assert!(
            (value.get(0, 0) - 3.0).abs() < lr_tolerance,
            "did not converge: {}",
            value.get(0, 0)
        );
    }

    #[test]
    fn sgd_minimizes_quadratic() {
        quadratic_converges(Sgd::new(0.1), 100, 1e-3);
    }

    #[test]
    fn sgd_momentum_minimizes_quadratic() {
        quadratic_converges(Sgd::with_momentum(0.05, 0.9), 200, 1e-2);
    }

    #[test]
    fn adam_minimizes_quadratic() {
        quadratic_converges(Adam::new(0.2), 300, 1e-2);
    }

    #[test]
    fn sgd_step_is_lr_times_grad() {
        let mut value = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let mut grad = Matrix::from_rows(&[vec![0.5, -1.0]]);
        let mut opt = Sgd::new(0.1);
        let mut params = vec![Parameter::new("p", &mut value, &mut grad)];
        opt.step(&mut params);
        assert!((value.get(0, 0) - 0.95).abs() < 1e-6);
        assert!((value.get(0, 1) - 2.1).abs() < 1e-6);
    }

    #[test]
    fn clipping_bounds_update_norm() {
        let mut value = Matrix::from_rows(&[vec![0.0, 0.0]]);
        let mut grad = Matrix::from_rows(&[vec![30.0, 40.0]]); // norm 50
        let mut opt = Sgd::new(1.0).with_clipping(5.0);
        let mut params = vec![Parameter::new("p", &mut value, &mut grad)];
        opt.step(&mut params);
        // Update should have norm 5 (clipped), direction preserved.
        let norm = (value.get(0, 0).powi(2) + value.get(0, 1).powi(2)).sqrt();
        assert!((norm - 5.0).abs() < 1e-4);
        assert!(value.get(0, 0) < 0.0 && value.get(0, 1) < 0.0);
    }

    #[test]
    fn adam_handles_multiple_parameters() {
        let mut v1 = Matrix::from_rows(&[vec![5.0]]);
        let mut g1 = Matrix::zeros(1, 1);
        let mut v2 = Matrix::from_rows(&[vec![-5.0]]);
        let mut g2 = Matrix::zeros(1, 1);
        let mut opt = Adam::new(0.3);
        for _ in 0..200 {
            g1.set(0, 0, 2.0 * v1.get(0, 0));
            g2.set(0, 0, 2.0 * (v2.get(0, 0) + 1.0));
            let mut params = vec![
                Parameter::new("a", &mut v1, &mut g1),
                Parameter::new("b", &mut v2, &mut g2),
            ];
            opt.step(&mut params);
        }
        assert!(v1.get(0, 0).abs() < 0.05);
        assert!((v2.get(0, 0) + 1.0).abs() < 0.05);
    }
}
