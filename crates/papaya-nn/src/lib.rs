//! A minimal, dependency-free neural-network substrate for federated
//! on-device training.
//!
//! PAPAYA's production evaluation trains an LSTM-based next-word-prediction
//! language model with PyTorch Mobile on client devices.  This crate provides
//! the pieces of that stack the reproduction needs, implemented from scratch:
//!
//! * [`tensor::Matrix`] — a row-major 2-D `f32` matrix with the handful of
//!   BLAS-like operations the layers need;
//! * layers with explicit forward/backward passes and internally stored
//!   activations ([`linear::Linear`], [`embedding::Embedding`],
//!   [`lstm::LstmCell`]);
//! * [`loss::softmax_cross_entropy`] and its gradient;
//! * client-side optimizers ([`optim::Sgd`], [`optim::Adam`]);
//! * [`params::ParamVec`] — a flat view of model parameters used for model
//!   upload, masking (secure aggregation operates on flat vectors), and
//!   server-side optimizer steps.
//!
//! All gradients are validated against finite differences in the test suite.
//!
//! # Example
//!
//! ```
//! use papaya_nn::linear::Linear;
//! use papaya_nn::tensor::Matrix;
//! use papaya_nn::optim::{Optimizer, Sgd};
//!
//! let mut layer = Linear::new(4, 2, 42);
//! let x = Matrix::from_rows(&[vec![1.0, 0.5, -0.3, 2.0]]);
//! let y = layer.forward(&x);
//! assert_eq!(y.shape(), (1, 2));
//! let grad_out = Matrix::ones(1, 2);
//! let _grad_in = layer.backward(&grad_out);
//! let mut opt = Sgd::new(0.1);
//! opt.step(&mut layer.parameters_mut());
//! ```

pub mod embedding;
pub mod init;
pub mod linear;
pub mod loss;
pub mod lstm;
pub mod optim;
pub mod params;
pub mod tensor;

pub use params::{ParamVec, Parameter};
pub use tensor::Matrix;
