//! Fully connected (affine) layer with explicit forward/backward passes.

use crate::init::xavier_uniform;
use crate::params::Parameter;
use crate::tensor::Matrix;

/// A dense layer computing `y = x W + b`.
///
/// Inputs are `(batch, in_features)` matrices; outputs are
/// `(batch, out_features)`.
#[derive(Clone, Debug)]
pub struct Linear {
    weight: Matrix,
    bias: Matrix,
    weight_grad: Matrix,
    bias_grad: Matrix,
    cached_input: Option<Matrix>,
}

impl Linear {
    /// Creates a layer with Xavier-initialized weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, seed: u64) -> Self {
        Linear {
            weight: xavier_uniform(in_features, out_features, seed),
            bias: Matrix::zeros(1, out_features),
            weight_grad: Matrix::zeros(in_features, out_features),
            bias_grad: Matrix::zeros(1, out_features),
            cached_input: None,
        }
    }

    /// Input dimensionality.
    pub fn in_features(&self) -> usize {
        self.weight.rows()
    }

    /// Output dimensionality.
    pub fn out_features(&self) -> usize {
        self.weight.cols()
    }

    /// Forward pass; caches the input for the backward pass.
    pub fn forward(&mut self, input: &Matrix) -> Matrix {
        let out = input.matmul(&self.weight).add_row_broadcast(&self.bias);
        self.cached_input = Some(input.clone());
        out
    }

    /// Forward pass without caching (for evaluation).
    pub fn forward_inference(&self, input: &Matrix) -> Matrix {
        input.matmul(&self.weight).add_row_broadcast(&self.bias)
    }

    /// Backward pass: accumulates parameter gradients and returns the
    /// gradient with respect to the input.
    ///
    /// # Panics
    ///
    /// Panics if called before [`Linear::forward`].
    pub fn backward(&mut self, grad_output: &Matrix) -> Matrix {
        let input = self
            .cached_input
            .as_ref()
            // papaya-lint: allow(panic-hygiene) -- documented panic: backward before forward is a training-loop sequencing bug
            .expect("backward called before forward");
        // dW = x^T * dy ; db = sum_rows(dy) ; dx = dy * W^T
        self.weight_grad
            .add_assign(&input.matmul_transpose_a(grad_output));
        self.bias_grad.add_assign(&grad_output.sum_rows());
        grad_output.matmul_transpose_b(&self.weight)
    }

    /// Returns mutable views of the parameters for optimizers.
    pub fn parameters_mut(&mut self) -> Vec<Parameter<'_>> {
        vec![
            Parameter::new("linear.weight", &mut self.weight, &mut self.weight_grad),
            Parameter::new("linear.bias", &mut self.bias, &mut self.bias_grad),
        ]
    }

    /// Returns the parameter matrices (weights, then bias) by reference.
    pub fn parameter_matrices(&self) -> Vec<&Matrix> {
        vec![&self.weight, &self.bias]
    }

    /// Overwrites the parameters from the given matrices (same order as
    /// [`Linear::parameter_matrices`]).
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn set_parameter_matrices(&mut self, matrices: &[Matrix]) {
        assert_eq!(matrices.len(), 2, "expected weight and bias");
        assert_eq!(matrices[0].shape(), self.weight.shape());
        assert_eq!(matrices[1].shape(), self.bias.shape());
        self.weight = matrices[0].clone();
        self.bias = matrices[1].clone();
    }

    /// Zeroes accumulated gradients.
    pub fn zero_grad(&mut self) {
        for p in self.parameters_mut() {
            let mut p = p;
            p.zero_grad();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Finite-difference gradient check on a scalar loss `sum(W_out)`.
    #[test]
    fn gradient_check() {
        let mut layer = Linear::new(3, 2, 0);
        let input = Matrix::from_rows(&[vec![0.5, -1.0, 2.0], vec![1.5, 0.3, -0.7]]);
        let grad_out = Matrix::ones(2, 2); // loss = sum of outputs
        let analytic_input_grad = {
            let _ = layer.forward(&input);
            layer.backward(&grad_out)
        };

        // Check input gradient numerically.
        let eps = 1e-3f32;
        for r in 0..2 {
            for c in 0..3 {
                let mut plus = input.clone();
                plus.set(r, c, plus.get(r, c) + eps);
                let mut minus = input.clone();
                minus.set(r, c, minus.get(r, c) - eps);
                let lp: f32 = layer.forward_inference(&plus).data().iter().sum();
                let lm: f32 = layer.forward_inference(&minus).data().iter().sum();
                let numeric = (lp - lm) / (2.0 * eps);
                let analytic = analytic_input_grad.get(r, c);
                assert!(
                    (numeric - analytic).abs() < 1e-2,
                    "input grad mismatch at ({r},{c}): {numeric} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn weight_gradient_check() {
        let mut layer = Linear::new(2, 2, 1);
        let input = Matrix::from_rows(&[vec![1.0, -0.5]]);
        let grad_out = Matrix::ones(1, 2);
        let _ = layer.forward(&input);
        let _ = layer.backward(&grad_out);
        let analytic = layer.weight_grad.clone();

        let eps = 1e-3f32;
        for r in 0..2 {
            for c in 0..2 {
                let orig = layer.weight.get(r, c);
                layer.weight.set(r, c, orig + eps);
                let lp: f32 = layer.forward_inference(&input).data().iter().sum();
                layer.weight.set(r, c, orig - eps);
                let lm: f32 = layer.forward_inference(&input).data().iter().sum();
                layer.weight.set(r, c, orig);
                let numeric = (lp - lm) / (2.0 * eps);
                assert!(
                    (numeric - analytic.get(r, c)).abs() < 1e-2,
                    "weight grad mismatch at ({r},{c})"
                );
            }
        }
    }

    #[test]
    fn bias_gradient_is_row_count() {
        let mut layer = Linear::new(2, 3, 2);
        let input = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]]);
        let _ = layer.forward(&input);
        let _ = layer.backward(&Matrix::ones(3, 3));
        assert!(layer
            .bias_grad
            .data()
            .iter()
            .all(|&g| (g - 3.0).abs() < 1e-6));
    }

    #[test]
    fn grads_accumulate_until_zeroed() {
        let mut layer = Linear::new(2, 2, 3);
        let input = Matrix::from_rows(&[vec![1.0, 1.0]]);
        for _ in 0..3 {
            let _ = layer.forward(&input);
            let _ = layer.backward(&Matrix::ones(1, 2));
        }
        let after3 = layer.bias_grad.get(0, 0);
        assert!((after3 - 3.0).abs() < 1e-6);
        layer.zero_grad();
        assert_eq!(layer.bias_grad.get(0, 0), 0.0);
    }

    #[test]
    fn parameter_roundtrip() {
        let layer = Linear::new(3, 4, 5);
        let mats: Vec<Matrix> = layer.parameter_matrices().into_iter().cloned().collect();
        let mut other = Linear::new(3, 4, 99);
        other.set_parameter_matrices(&mats);
        assert_eq!(other.parameter_matrices()[0], layer.parameter_matrices()[0]);
    }

    #[test]
    #[should_panic(expected = "backward called before forward")]
    fn backward_before_forward_panics() {
        let mut layer = Linear::new(2, 2, 0);
        let _ = layer.backward(&Matrix::ones(1, 2));
    }
}
