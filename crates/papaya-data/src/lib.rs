//! Synthetic federated populations and datasets.
//!
//! The PAPAYA evaluation runs on ~100 million real Android devices whose
//! execution times span more than two orders of magnitude (Figure 2) and
//! whose per-device example counts are heavy-tailed and *positively
//! correlated* with execution time (Figure 11).  This crate builds synthetic
//! populations with exactly those statistical properties, plus a small
//! non-IID character-level text corpus for the language-model experiments.
//!
//! * [`population`] — device profiles: speed, example count, dropout
//!   probability, and the execution-time model.
//! * [`text`] — per-client synthetic text with client-specific topic mixtures
//!   (non-IID), tokenized at the character level.
//! * [`dataset`] — federated dataset containers with train/val/test splits.
//! * [`stats`] — percentiles, histograms, and the two-sample
//!   Kolmogorov–Smirnov test used in Section 7.4.
//!
//! # Example
//!
//! ```
//! use papaya_data::population::{Population, PopulationConfig};
//! let pop = Population::generate(&PopulationConfig::default().with_size(1_000), 42);
//! assert_eq!(pop.len(), 1_000);
//! assert!(pop.device(0).execution_time_s > 0.0);
//! ```

pub mod dataset;
pub mod population;
pub mod stats;
pub mod text;

pub use dataset::{ClientDataset, FederatedTextDataset};
pub use population::{DeviceProfile, Population, PopulationConfig};
