//! Statistical helpers used by the evaluation harness: percentiles,
//! histograms, correlation, the Box–Muller transform shared by every
//! Gaussian sampler in the workspace, and the two-sample
//! Kolmogorov–Smirnov test the paper uses to quantify over-selection
//! sampling bias (Section 7.4).

/// The Box–Muller transform: maps two uniforms to two independent standard
/// normals.  `u1` must lie in `(0, 1]` (so the log is finite) and `u2` in
/// `[0, 1)`; producing the uniforms is the caller's job, which keeps the
/// transform usable from any RNG (`StdRng` populations and surrogates,
/// `ChaCha20Rng` DP noise) without an RNG trait bound.
pub fn standard_normal_pair(u1: f64, u2: f64) -> (f64, f64) {
    debug_assert!(u1 > 0.0 && u1 <= 1.0, "u1 must be in (0, 1], got {u1}");
    let radius = (-2.0 * u1.ln()).sqrt();
    let angle = 2.0 * std::f64::consts::PI * u2;
    (radius * angle.cos(), radius * angle.sin())
}

/// Returns the `p`-th percentile (0–100) of `values` using linear
/// interpolation between order statistics.
///
/// # Panics
///
/// Panics if `values` is empty or `p` is outside `[0, 100]`.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    let mut sorted = values.to_vec();
    // papaya-lint: allow(panic-hygiene) -- NaN in a latency/metric sample is corrupt input; a silent NaN ordering would quietly skew every percentile
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in percentile input"));
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Arithmetic mean.
///
/// # Panics
///
/// Panics if `values` is empty.
pub fn mean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "mean of empty slice");
    values.iter().sum::<f64>() / values.len() as f64
}

/// Pearson correlation coefficient between two equal-length samples.
///
/// # Panics
///
/// Panics if the slices have different lengths or fewer than two elements.
pub fn pearson_correlation(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "length mismatch");
    assert!(x.len() >= 2, "need at least two points");
    let mx = mean(x);
    let my = mean(y);
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (a, b) in x.iter().zip(y.iter()) {
        cov += (a - mx) * (b - my);
        vx += (a - mx) * (a - mx);
        vy += (b - my) * (b - my);
    }
    if vx == 0.0 || vy == 0.0 {
        return 0.0;
    }
    cov / (vx.sqrt() * vy.sqrt())
}

/// A fixed-width histogram over log-spaced or linear bins.
#[derive(Clone, Debug)]
pub struct Histogram {
    /// Bin edges (length = bins + 1).
    pub edges: Vec<f64>,
    /// Counts per bin.
    pub counts: Vec<usize>,
}

impl Histogram {
    /// Builds a histogram with logarithmically spaced bins between the
    /// minimum and maximum of `values`.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty, contains non-positive entries, or
    /// `bins == 0`.
    pub fn log_spaced(values: &[f64], bins: usize) -> Self {
        assert!(!values.is_empty() && bins > 0);
        assert!(
            values.iter().all(|&v| v > 0.0),
            "log bins need positive data"
        );
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(0.0f64, f64::max) * 1.000001;
        let log_min = min.ln();
        let log_max = max.ln();
        let edges: Vec<f64> = (0..=bins)
            .map(|i| (log_min + (log_max - log_min) * i as f64 / bins as f64).exp())
            .collect();
        let mut counts = vec![0usize; bins];
        for &v in values {
            let t = ((v.ln() - log_min) / (log_max - log_min) * bins as f64).floor() as usize;
            counts[t.min(bins - 1)] += 1;
        }
        Histogram { edges, counts }
    }

    /// Normalized densities (counts / total).
    pub fn densities(&self) -> Vec<f64> {
        let total: usize = self.counts.iter().sum();
        self.counts
            .iter()
            .map(|&c| c as f64 / total.max(1) as f64)
            .collect()
    }
}

/// Result of a two-sample Kolmogorov–Smirnov test.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KsTestResult {
    /// The D statistic: maximum absolute distance between the empirical CDFs.
    pub d_statistic: f64,
    /// Asymptotic two-sided p-value (Kolmogorov distribution approximation).
    pub p_value: f64,
}

/// Two-sample Kolmogorov–Smirnov test.
///
/// Returns the D statistic and an asymptotic p-value.  The paper reports
/// D = 8.8e-4 (p = 0.98) for AsyncFL vs the ground-truth participation
/// distribution and D = 6.6e-2 (p = 0.0) for SyncFL with over-selection.
///
/// # Panics
///
/// Panics if either sample is empty.
pub fn ks_two_sample(sample_a: &[f64], sample_b: &[f64]) -> KsTestResult {
    assert!(!sample_a.is_empty() && !sample_b.is_empty(), "empty sample");
    let mut a = sample_a.to_vec();
    let mut b = sample_b.to_vec();
    // papaya-lint: allow(panic-hygiene) -- NaN in a KS sample is corrupt input; failing loudly beats a meaningless test statistic
    a.sort_by(|x, y| x.partial_cmp(y).expect("NaN"));
    // papaya-lint: allow(panic-hygiene) -- NaN in a KS sample is corrupt input; failing loudly beats a meaningless test statistic
    b.sort_by(|x, y| x.partial_cmp(y).expect("NaN"));
    let (n, m) = (a.len(), b.len());
    let mut i = 0usize;
    let mut j = 0usize;
    let mut d: f64 = 0.0;
    while i < n && j < m {
        let xa = a[i];
        let xb = b[j];
        let x = xa.min(xb);
        while i < n && a[i] <= x {
            i += 1;
        }
        while j < m && b[j] <= x {
            j += 1;
        }
        let cdf_a = i as f64 / n as f64;
        let cdf_b = j as f64 / m as f64;
        d = d.max((cdf_a - cdf_b).abs());
    }
    let ne = (n as f64 * m as f64) / (n as f64 + m as f64);
    let lambda = (ne.sqrt() + 0.12 + 0.11 / ne.sqrt()) * d;
    let p_value = kolmogorov_sf(lambda).clamp(0.0, 1.0);
    KsTestResult {
        d_statistic: d,
        p_value,
    }
}

/// Survival function of the Kolmogorov distribution,
/// `Q(λ) = 2 Σ_{k≥1} (-1)^{k-1} exp(-2 k² λ²)`.
fn kolmogorov_sf(lambda: f64) -> f64 {
    if lambda < 1e-3 {
        return 1.0;
    }
    let mut sum = 0.0;
    for k in 1..=100 {
        let term = (-2.0 * (k as f64).powi(2) * lambda.powi(2)).exp();
        sum += if k % 2 == 1 { term } else { -term };
        if term < 1e-12 {
            break;
        }
    }
    2.0 * sum
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn percentile_of_known_sequence() {
        let v: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert!((percentile(&v, 0.0) - 1.0).abs() < 1e-9);
        assert!((percentile(&v, 100.0) - 100.0).abs() < 1e-9);
        assert!((percentile(&v, 50.0) - 50.5).abs() < 1e-9);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[3.0], 75.0), 3.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        let _ = percentile(&[], 50.0);
    }

    #[test]
    fn correlation_of_identical_is_one() {
        let x = vec![1.0, 2.0, 3.0, 4.0];
        assert!((pearson_correlation(&x, &x) - 1.0).abs() < 1e-9);
        let y: Vec<f64> = x.iter().map(|v| -v).collect();
        assert!((pearson_correlation(&x, &y) + 1.0).abs() < 1e-9);
    }

    #[test]
    fn correlation_of_constant_is_zero() {
        let x = vec![1.0, 2.0, 3.0];
        let y = vec![5.0, 5.0, 5.0];
        assert_eq!(pearson_correlation(&x, &y), 0.0);
    }

    #[test]
    fn histogram_counts_sum_to_input_len() {
        let values: Vec<f64> = (1..=1000).map(|i| i as f64).collect();
        let hist = Histogram::log_spaced(&values, 20);
        assert_eq!(hist.counts.iter().sum::<usize>(), 1000);
        assert_eq!(hist.edges.len(), 21);
        let densities = hist.densities();
        assert!((densities.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ks_identical_samples_have_small_d() {
        let mut rng = StdRng::seed_from_u64(1);
        let a: Vec<f64> = (0..5000).map(|_| rng.gen::<f64>()).collect();
        let b: Vec<f64> = (0..5000).map(|_| rng.gen::<f64>()).collect();
        let result = ks_two_sample(&a, &b);
        assert!(result.d_statistic < 0.05, "D = {}", result.d_statistic);
        assert!(result.p_value > 0.05, "p = {}", result.p_value);
    }

    #[test]
    fn ks_shifted_samples_have_large_d() {
        let mut rng = StdRng::seed_from_u64(2);
        let a: Vec<f64> = (0..5000).map(|_| rng.gen::<f64>()).collect();
        let b: Vec<f64> = (0..5000).map(|_| rng.gen::<f64>() + 0.3).collect();
        let result = ks_two_sample(&a, &b);
        assert!(result.d_statistic > 0.2, "D = {}", result.d_statistic);
        assert!(result.p_value < 0.01, "p = {}", result.p_value);
    }

    #[test]
    fn ks_is_symmetric() {
        let a = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        let b = vec![1.5, 2.5, 3.5];
        let r1 = ks_two_sample(&a, &b);
        let r2 = ks_two_sample(&b, &a);
        assert!((r1.d_statistic - r2.d_statistic).abs() < 1e-12);
    }

    #[test]
    fn mean_known_value() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
    }
}
