//! Synthetic non-IID text generation for the language-model experiments.
//!
//! The paper trains a next-word-prediction LSTM on keyboard text.  That data
//! is private, so the reproduction generates a synthetic corpus with the
//! properties that matter for the experiments:
//!
//! * **Non-IID clients** — each client draws sentences from a client-specific
//!   mixture over a small set of "topics"; clients with many examples are
//!   biased towards a distinct topic mixture so that excluding them (as
//!   over-selection does) measurably hurts their perplexity (Table 1).
//! * **Character-level vocabulary** — small vocabulary so a tiny LSTM can be
//!   trained on-device quickly.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The fixed character vocabulary: lowercase letters, space, and end-of-text.
pub const VOCAB: &str = "abcdefghijklmnopqrstuvwxyz .";

/// Word lists per topic.  Deliberately distinct letter statistics per topic
/// so topic mixtures are visible to a character-level model.
const TOPIC_WORDS: [&[&str]; 4] = [
    &[
        "meet", "team", "deadline", "agenda", "email", "demand", "lead", "update",
    ],
    &[
        "pizza", "pasta", "salad", "apple", "banana", "salsa", "snack", "bread",
    ],
    &[
        "goal", "ball", "coach", "squad", "match", "track", "score", "champ",
    ],
    &[
        "quiz", "exam", "study", "major", "campus", "topic", "query", "jury",
    ],
];

/// Maps a character to its vocabulary index.
///
/// # Panics
///
/// Panics if the character is not in [`VOCAB`].
pub fn char_to_id(c: char) -> usize {
    VOCAB
        .find(c)
        .unwrap_or_else(|| panic!("character {c:?} not in vocabulary"))
}

/// Maps a vocabulary index back to its character.
///
/// # Panics
///
/// Panics if `id` is out of range.
pub fn id_to_char(id: usize) -> char {
    // papaya-lint: allow(panic-hygiene) -- documented panic: callers index with ids the tokenizer itself produced
    VOCAB.chars().nth(id).expect("id out of vocabulary range")
}

/// Number of tokens in the character vocabulary.
pub fn vocab_size() -> usize {
    VOCAB.chars().count()
}

/// A generator of client-specific synthetic sentences.
#[derive(Clone, Debug)]
pub struct TextGenerator {
    /// Mixture weights over topics (sums to 1).
    topic_mixture: Vec<f64>,
    rng: StdRng,
}

impl TextGenerator {
    /// Creates a generator for a client.
    ///
    /// `data_volume_percentile` in `[0, 1]` shifts the topic mixture: clients
    /// in the upper tail of data volume lean heavily on the last topic, which
    /// is how the reproduction encodes the paper's observation that
    /// heavy-data clients have a distinct distribution.
    pub fn for_client(client_id: u64, data_volume_percentile: f64, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed ^ client_id.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let topics = TOPIC_WORDS.len();
        let mut topic_mixture: Vec<f64> = (0..topics).map(|_| rng.gen_range(0.1..1.0)).collect();
        // Heavy-data clients concentrate on the final topic.
        let tail_weight = (data_volume_percentile.clamp(0.0, 1.0)).powi(3) * 8.0;
        topic_mixture[topics - 1] += tail_weight;
        let sum: f64 = topic_mixture.iter().sum();
        for w in topic_mixture.iter_mut() {
            *w /= sum;
        }
        TextGenerator { topic_mixture, rng }
    }

    /// Samples one sentence of roughly `words` words and returns it as a
    /// vector of character token ids terminated by the end-of-text token.
    pub fn sentence(&mut self, words: usize) -> Vec<usize> {
        let mut text = String::new();
        for i in 0..words.max(1) {
            let topic = self.sample_topic();
            let word_list = TOPIC_WORDS[topic];
            let word = word_list[self.rng.gen_range(0..word_list.len())];
            if i > 0 {
                text.push(' ');
            }
            text.push_str(word);
        }
        text.push('.');
        text.chars().map(char_to_id).collect()
    }

    fn sample_topic(&mut self) -> usize {
        let r: f64 = self.rng.gen();
        let mut acc = 0.0;
        for (i, w) in self.topic_mixture.iter().enumerate() {
            acc += w;
            if r < acc {
                return i;
            }
        }
        self.topic_mixture.len() - 1
    }

    /// The client's topic mixture.
    pub fn topic_mixture(&self) -> &[f64] {
        &self.topic_mixture
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vocab_roundtrip() {
        for (i, c) in VOCAB.chars().enumerate() {
            assert_eq!(char_to_id(c), i);
            assert_eq!(id_to_char(i), c);
        }
        assert_eq!(vocab_size(), 28);
    }

    #[test]
    #[should_panic(expected = "not in vocabulary")]
    fn unknown_char_panics() {
        let _ = char_to_id('!');
    }

    #[test]
    fn sentences_are_valid_token_sequences() {
        let mut g = TextGenerator::for_client(3, 0.5, 1);
        for _ in 0..20 {
            let s = g.sentence(5);
            assert!(!s.is_empty());
            assert!(s.iter().all(|&t| t < vocab_size()));
            assert_eq!(*s.last().unwrap(), char_to_id('.'));
        }
    }

    #[test]
    fn generator_is_deterministic_per_client() {
        let mut a = TextGenerator::for_client(7, 0.2, 9);
        let mut b = TextGenerator::for_client(7, 0.2, 9);
        assert_eq!(a.sentence(4), b.sentence(4));
        let mut c = TextGenerator::for_client(8, 0.2, 9);
        // Different clients draw different text (overwhelmingly likely).
        let s1: Vec<usize> = (0..5).flat_map(|_| a.sentence(4)).collect();
        let s2: Vec<usize> = (0..5).flat_map(|_| c.sentence(4)).collect();
        assert_ne!(s1, s2);
    }

    #[test]
    fn heavy_data_clients_prefer_tail_topic() {
        let g_light = TextGenerator::for_client(1, 0.0, 5);
        let g_heavy = TextGenerator::for_client(1, 1.0, 5);
        let tail = TOPIC_WORDS.len() - 1;
        assert!(g_heavy.topic_mixture()[tail] > 0.7);
        assert!(g_heavy.topic_mixture()[tail] > g_light.topic_mixture()[tail]);
    }

    #[test]
    fn mixture_sums_to_one() {
        for pct in [0.0, 0.3, 0.9, 1.0] {
            let g = TextGenerator::for_client(11, pct, 2);
            let sum: f64 = g.topic_mixture().iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
        }
    }
}
