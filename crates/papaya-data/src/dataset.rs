//! Federated dataset containers.
//!
//! A [`FederatedTextDataset`] pairs a synthetic device [`Population`] with
//! per-client character-level text, split into train/validation/test sets as
//! described in Section 7.1 ("We partition each client's data into train,
//! test, and validation sets randomly").

use crate::population::Population;
use crate::text::{vocab_size, TextGenerator};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One client's local data: token sequences split into train/val/test.
#[derive(Clone, Debug, Default)]
pub struct ClientDataset {
    /// Training sequences (each a vector of character token ids).
    pub train: Vec<Vec<usize>>,
    /// Validation sequences.
    pub validation: Vec<Vec<usize>>,
    /// Test sequences.
    pub test: Vec<Vec<usize>>,
}

impl ClientDataset {
    /// Total number of examples across all splits.
    pub fn total_examples(&self) -> usize {
        self.train.len() + self.validation.len() + self.test.len()
    }

    /// Number of training examples.
    pub fn num_train(&self) -> usize {
        self.train.len()
    }
}

/// A federated character-level text dataset over a device population.
#[derive(Clone, Debug)]
pub struct FederatedTextDataset {
    clients: Vec<ClientDataset>,
}

impl FederatedTextDataset {
    /// Generates per-client data matching each device's `num_examples`.
    ///
    /// `words_per_sentence` controls sequence length (kept short so on-device
    /// training of the small LSTM stays cheap).  The split is 80/10/10.
    pub fn generate(population: &Population, words_per_sentence: usize, seed: u64) -> Self {
        let max_examples = population
            .iter()
            .map(|d| d.num_examples)
            .max()
            .unwrap_or(1)
            .max(1) as f64;
        let mut clients = Vec::with_capacity(population.len());
        let mut rng = StdRng::seed_from_u64(seed);
        for device in population.iter() {
            let volume_percentile = device.num_examples as f64 / max_examples;
            let mut generator =
                TextGenerator::for_client(device.id as u64, volume_percentile, seed);
            let n = device.num_examples;
            let mut sequences: Vec<Vec<usize>> = (0..n)
                .map(|_| generator.sentence(words_per_sentence))
                .collect();
            // Shuffle then split 80/10/10, keeping at least one training
            // example per client.
            for i in (1..sequences.len()).rev() {
                let j = rng.gen_range(0..=i);
                sequences.swap(i, j);
            }
            let n_test = (n / 10).min(n.saturating_sub(1));
            let n_val = (n / 10).min(n.saturating_sub(1 + n_test));
            let test = sequences.split_off(n - n_test);
            let validation = sequences.split_off(n - n_test - n_val);
            clients.push(ClientDataset {
                train: sequences,
                validation,
                test,
            });
        }
        FederatedTextDataset { clients }
    }

    /// Number of clients.
    pub fn len(&self) -> usize {
        self.clients.len()
    }

    /// Returns true when there are no clients.
    pub fn is_empty(&self) -> bool {
        self.clients.is_empty()
    }

    /// The dataset of client `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn client(&self, id: usize) -> &ClientDataset {
        &self.clients[id]
    }

    /// Size of the character vocabulary models must use.
    pub fn vocab_size(&self) -> usize {
        vocab_size()
    }

    /// Total number of training examples across all clients.
    pub fn total_train_examples(&self) -> usize {
        self.clients.iter().map(|c| c.num_train()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::population::{Population, PopulationConfig};

    fn small_dataset() -> (Population, FederatedTextDataset) {
        let pop = Population::generate(&PopulationConfig::default().with_size(50), 11);
        let data = FederatedTextDataset::generate(&pop, 4, 11);
        (pop, data)
    }

    #[test]
    fn one_client_dataset_per_device() {
        let (pop, data) = small_dataset();
        assert_eq!(data.len(), pop.len());
    }

    #[test]
    fn example_counts_match_population() {
        let (pop, data) = small_dataset();
        for device in pop.iter() {
            assert_eq!(
                data.client(device.id).total_examples(),
                device.num_examples,
                "client {}",
                device.id
            );
        }
    }

    #[test]
    fn every_client_has_training_data() {
        let (_, data) = small_dataset();
        for i in 0..data.len() {
            assert!(
                data.client(i).num_train() >= 1,
                "client {i} has no train data"
            );
        }
    }

    #[test]
    fn tokens_are_in_vocabulary() {
        let (_, data) = small_dataset();
        let v = data.vocab_size();
        for i in 0..data.len() {
            for seq in &data.client(i).train {
                assert!(seq.iter().all(|&t| t < v));
            }
        }
    }

    #[test]
    fn splits_are_roughly_80_10_10_for_large_clients() {
        let (pop, data) = small_dataset();
        if let Some(device) = pop.iter().find(|d| d.num_examples >= 100) {
            let c = data.client(device.id);
            let n = device.num_examples as f64;
            assert!((c.num_train() as f64) > 0.7 * n);
            assert!((c.test.len() as f64) < 0.2 * n);
        };
    }

    #[test]
    fn deterministic_generation() {
        let pop = Population::generate(&PopulationConfig::default().with_size(10), 3);
        let a = FederatedTextDataset::generate(&pop, 3, 5);
        let b = FederatedTextDataset::generate(&pop, 3, 5);
        assert_eq!(a.client(4).train, b.client(4).train);
    }
}
