//! Synthetic device populations with realistic heterogeneity.
//!
//! The model follows the observations in Sections 2 and 7.4 of the paper:
//!
//! * per-client training-example counts are heavy tailed (log-normal);
//! * device compute speed varies by roughly an order of magnitude
//!   (log-normal);
//! * execution time grows with the number of examples and shrinks with
//!   device speed, so slow clients tend to be the ones with many examples
//!   (the correlation that makes over-selection biased);
//! * a configurable fraction of clients drop out mid-training (the paper
//!   reports up to 10 %).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Identifier of a device in a population.
pub type DeviceId = usize;

/// Configuration for synthesizing a device population.
#[derive(Clone, Debug)]
pub struct PopulationConfig {
    /// Number of devices.
    pub size: usize,
    /// Mean of `ln(example_count)`.
    pub examples_log_mean: f64,
    /// Standard deviation of `ln(example_count)`.
    pub examples_log_std: f64,
    /// Minimum examples per client.
    pub min_examples: usize,
    /// Maximum examples per client (production systems cap local data use).
    pub max_examples: usize,
    /// Standard deviation of `ln(speed_factor)`; speed has median 1.0.
    pub speed_log_std: f64,
    /// Fixed per-participation overhead in seconds (download, setup, upload).
    pub setup_time_s: f64,
    /// Seconds of compute per training example on a median-speed device.
    pub per_example_time_s: f64,
    /// Probability that a client drops out during training.
    pub dropout_prob: f64,
    /// Client-side training timeout in seconds (paper: 4 minutes).
    pub timeout_s: f64,
}

impl Default for PopulationConfig {
    fn default() -> Self {
        PopulationConfig {
            size: 10_000,
            examples_log_mean: 3.7, // median ~40 examples
            examples_log_std: 1.1,
            min_examples: 1,
            max_examples: 5_000,
            speed_log_std: 0.7,
            setup_time_s: 2.0,
            per_example_time_s: 0.15,
            dropout_prob: 0.08,
            timeout_s: 240.0,
        }
    }
}

impl PopulationConfig {
    /// Sets the population size.
    pub fn with_size(mut self, size: usize) -> Self {
        self.size = size;
        self
    }

    /// Sets the dropout probability.
    pub fn with_dropout(mut self, dropout_prob: f64) -> Self {
        self.dropout_prob = dropout_prob;
        self
    }

    /// Sets the client training timeout.
    pub fn with_timeout(mut self, timeout_s: f64) -> Self {
        self.timeout_s = timeout_s;
        self
    }
}

/// A single synthetic device.
#[derive(Clone, Debug, PartialEq)]
pub struct DeviceProfile {
    /// Device identifier (index in the population).
    pub id: DeviceId,
    /// Number of local training examples.
    pub num_examples: usize,
    /// Relative compute speed (median device = 1.0; larger is faster).
    pub speed_factor: f64,
    /// End-to-end execution time in seconds for one participation
    /// (download + local training + upload), before any timeout is applied.
    pub execution_time_s: f64,
    /// Probability this device drops out mid-participation.
    pub dropout_prob: f64,
}

impl DeviceProfile {
    /// Execution time after applying the client timeout: devices that would
    /// exceed the timeout are cut off at the timeout (they report a failure).
    pub fn clamped_execution_time(&self, timeout_s: f64) -> f64 {
        self.execution_time_s.min(timeout_s)
    }

    /// Whether this device would exceed the given timeout.
    pub fn exceeds_timeout(&self, timeout_s: f64) -> bool {
        self.execution_time_s > timeout_s
    }
}

/// A synthetic population of devices.
///
/// # Packed idle state
///
/// At million-client scale the population dominates resident memory, so a
/// device is *not* stored as a [`DeviceProfile`] struct.  Only the two
/// quantities that cannot be re-derived from the config survive per device
/// — the speed factor (`f64`, its RNG draw is sequential) and the example
/// count (`u32`) — [`Population::BYTES_PER_DEVICE`] (12) bytes per idle
/// client.  Everything else is a pure function of those and the
/// [`PopulationConfig`]: [`Population::device`] materializes the full
/// profile on demand, re-deriving `execution_time_s` with the exact
/// floating-point expression the generator used, so the packed
/// representation is bit-identical to the historical struct-of-structs one
/// (see `docs/SCALING.md`).
#[derive(Clone, Debug)]
pub struct Population {
    /// Per-device relative compute speed (median 1.0).
    speed: Vec<f64>,
    /// Per-device local example count.
    examples: Vec<u32>,
    config: PopulationConfig,
}

/// Samples from a standard normal via the shared Box–Muller transform.
fn standard_normal(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    crate::stats::standard_normal_pair(u1, u2).0
}

impl Population {
    /// Stored bytes per idle device: the `f64` speed factor plus the `u32`
    /// example count.  Everything else in a [`DeviceProfile`] is re-derived
    /// on demand from the [`PopulationConfig`].  `docs/SCALING.md` budgets
    /// against this and a test pins it.
    pub const BYTES_PER_DEVICE: usize = std::mem::size_of::<f64>() + std::mem::size_of::<u32>();

    /// Generates a population from the given configuration and seed.
    pub fn generate(config: &PopulationConfig, seed: u64) -> Self {
        assert!(
            config.max_examples <= u32::MAX as usize,
            "max_examples {} exceeds the packed u32 example range",
            config.max_examples
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut speed = Vec::with_capacity(config.size);
        let mut examples = Vec::with_capacity(config.size);
        for _ in 0..config.size {
            let examples_raw = (config.examples_log_mean
                + config.examples_log_std * standard_normal(&mut rng))
            .exp();
            let num_examples =
                (examples_raw.round() as usize).clamp(config.min_examples, config.max_examples);
            let speed_factor = (config.speed_log_std * standard_normal(&mut rng)).exp();
            speed.push(speed_factor);
            examples.push(num_examples as u32);
        }
        Population {
            speed,
            examples,
            config: config.clone(),
        }
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.examples.len()
    }

    /// Returns true when the population is empty.
    pub fn is_empty(&self) -> bool {
        self.examples.is_empty()
    }

    /// The configuration used to generate this population.
    pub fn config(&self) -> &PopulationConfig {
        &self.config
    }

    /// Materializes the profile of device `id` from the packed state.
    ///
    /// The execution time is recomputed with the exact expression the
    /// generator historically stored, so the returned profile is
    /// bit-identical to one built at generation time.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn device(&self, id: DeviceId) -> DeviceProfile {
        let num_examples = self.examples[id] as usize;
        let speed_factor = self.speed[id];
        let compute_time =
            self.config.setup_time_s + self.config.per_example_time_s * num_examples as f64;
        let execution_time_s = compute_time / speed_factor;
        DeviceProfile {
            id,
            num_examples,
            speed_factor,
            execution_time_s,
            dropout_prob: self.config.dropout_prob,
        }
    }

    /// Iterates over all devices, materializing each profile on demand.
    pub fn iter(&self) -> impl Iterator<Item = DeviceProfile> + '_ {
        (0..self.len()).map(|id| self.device(id))
    }

    /// All execution times, in seconds (for Figure 2 style histograms).
    pub fn execution_times(&self) -> Vec<f64> {
        self.iter().map(|d| d.execution_time_s).collect()
    }

    /// All example counts.
    pub fn example_counts(&self) -> Vec<usize> {
        self.examples.iter().map(|&c| c as usize).collect()
    }

    /// Device ids whose example count falls at or above the given percentile
    /// of the population (used by Table 1's 75 %/99 % groups).
    pub fn ids_above_example_percentile(&self, percentile: f64) -> Vec<DeviceId> {
        let threshold = crate::stats::percentile(
            &self.examples.iter().map(|&c| c as f64).collect::<Vec<_>>(),
            percentile,
        );
        self.examples
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c as f64 >= threshold)
            .map(|(id, _)| id)
            .collect()
    }

    /// Pearson correlation between execution time and example count.
    pub fn time_examples_correlation(&self) -> f64 {
        let times: Vec<f64> = self.iter().map(|d| d.execution_time_s.ln()).collect();
        let counts: Vec<f64> = self.examples.iter().map(|&c| (c as f64).ln()).collect();
        crate::stats::pearson_correlation(&times, &counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pop(size: usize) -> Population {
        Population::generate(&PopulationConfig::default().with_size(size), 7)
    }

    #[test]
    fn generates_requested_size() {
        assert_eq!(pop(500).len(), 500);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let config = PopulationConfig::default().with_size(100);
        let a = Population::generate(&config, 1);
        let b = Population::generate(&config, 1);
        assert_eq!(a.device(42), b.device(42));
        let c = Population::generate(&config, 2);
        assert_ne!(a.device(42), c.device(42));
    }

    #[test]
    fn execution_times_span_two_orders_of_magnitude() {
        // Figure 2: the execution-time distribution spans >2 orders of
        // magnitude across the population.
        let p = pop(20_000);
        let times = p.execution_times();
        let min = times.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = times.iter().cloned().fold(0.0f64, f64::max);
        assert!(
            max / min > 100.0,
            "expected >100x spread, got {:.1}x",
            max / min
        );
    }

    #[test]
    fn execution_time_correlates_with_examples() {
        // Figure 11: slow clients tend to have many examples.
        let p = pop(20_000);
        let corr = p.time_examples_correlation();
        assert!(corr > 0.4, "expected positive correlation, got {corr}");
    }

    #[test]
    fn example_counts_are_heavy_tailed() {
        let p = pop(20_000);
        let counts: Vec<f64> = p.example_counts().iter().map(|&c| c as f64).collect();
        let mean = counts.iter().sum::<f64>() / counts.len() as f64;
        let median = crate::stats::percentile(&counts, 50.0);
        assert!(
            mean > 1.3 * median,
            "heavy tail expected: mean {mean}, median {median}"
        );
    }

    #[test]
    fn bounds_respected() {
        let config = PopulationConfig {
            min_examples: 5,
            max_examples: 50,
            ..PopulationConfig::default().with_size(2000)
        };
        let p = Population::generate(&config, 3);
        assert!(p
            .iter()
            .all(|d| d.num_examples >= 5 && d.num_examples <= 50));
    }

    #[test]
    fn timeout_clamping() {
        let d = DeviceProfile {
            id: 0,
            num_examples: 100,
            speed_factor: 0.01,
            execution_time_s: 900.0,
            dropout_prob: 0.0,
        };
        assert!(d.exceeds_timeout(240.0));
        assert_eq!(d.clamped_execution_time(240.0), 240.0);
        assert!(!d.exceeds_timeout(1000.0));
    }

    #[test]
    fn idle_state_stays_within_the_documented_byte_budget() {
        // The packed per-device state is exactly what the two parallel
        // vectors store; a materialized profile is strictly larger.  The
        // docs/SCALING.md budget table assumes 12 bytes per idle device —
        // this assertion fails before the docs can go stale.
        assert_eq!(
            Population::BYTES_PER_DEVICE,
            std::mem::size_of::<f64>() + std::mem::size_of::<u32>()
        );
        assert_eq!(Population::BYTES_PER_DEVICE, 12);
        assert!(Population::BYTES_PER_DEVICE < std::mem::size_of::<DeviceProfile>());
    }

    #[test]
    fn materialized_profiles_match_across_calls_and_iteration() {
        let p = pop(200);
        for (i, d) in p.iter().enumerate() {
            assert_eq!(d.id, i);
            assert_eq!(d, p.device(i));
        }
    }

    #[test]
    fn percentile_group_is_smaller_than_population() {
        let p = pop(5_000);
        let top1 = p.ids_above_example_percentile(99.0);
        let top25 = p.ids_above_example_percentile(75.0);
        assert!(!top1.is_empty());
        assert!(top1.len() < top25.len());
        assert!(top25.len() < p.len() / 2);
    }
}
