//! Multi-tenant control plane: task placement, client assignment, and
//! failure recovery.
//!
//! ```bash
//! cargo run --release --example multi_tenant
//! ```
//!
//! Demonstrates the Coordinator/Selector/Aggregator responsibilities of
//! Sections 4 and 6 and Appendix E.4: three tasks placed on two persistent
//! Aggregators by estimated workload, clients routed to tasks with positive
//! demand according to their capability tier, an Aggregator failure detected
//! through missed heartbeats, and the resulting reassignment propagating to
//! Selectors.

use papaya_sim::cluster::{Coordinator, RouteOutcome, Selector, TaskSpec};

fn main() {
    let mut coordinator = Coordinator::new(30.0, 7);
    coordinator.register_aggregator(0, 0.0);
    coordinator.register_aggregator(1, 0.0);

    // Three tenants with different scales and device requirements.
    let tasks = [
        TaskSpec {
            id: 0,
            name: "keyboard-lm".into(),
            concurrency: 2_000,
            model_size_bytes: 20_000_000,
            min_capability_tier: 0,
        },
        TaskSpec {
            id: 1,
            name: "speech-kws".into(),
            concurrency: 400,
            model_size_bytes: 5_000_000,
            min_capability_tier: 1,
        },
        TaskSpec {
            id: 2,
            name: "photo-ranker".into(),
            concurrency: 300,
            model_size_bytes: 50_000_000,
            min_capability_tier: 2,
        },
    ];
    for spec in tasks {
        let placed = coordinator.submit_task(spec.clone());
        println!(
            "task {:>12} (workload {:>5} MB-clients) -> {placed:?}",
            spec.name,
            spec.estimated_workload() / 1_000_000
        );
    }
    println!("aggregator loads: {:?}\n", coordinator.aggregator_loads());

    // Aggregators report client demand; clients of different capability
    // tiers check in and are assigned to eligible tasks.
    coordinator.report_demand(0, 500);
    coordinator.report_demand(1, 100);
    coordinator.report_demand(2, 50);
    let mut selector = Selector::new();
    selector.refresh(&coordinator);
    for tier in [0u8, 1, 2] {
        let assigned = coordinator.assign_client(tier);
        match assigned {
            Some((task, aggregator)) => println!(
                "client with capability tier {tier}: assigned to task {task}, routed to aggregator {:?}",
                selector.route(task) == RouteOutcome::Routed(aggregator)
            ),
            None => println!("client with capability tier {tier}: no eligible task right now"),
        }
    }

    // Aggregator 0 stops heartbeating; its tasks are reassigned and stale
    // Selector maps are refreshed.
    println!("\naggregator 1 heartbeats, aggregator 0 goes silent...");
    coordinator.heartbeat(1, 100.0);
    let sweep = coordinator.detect_failures(100.0);
    println!(
        "failure sweep: failed {:?}, reassigned tasks {:?}, orphaned {:?}",
        sweep.failed, sweep.reassigned, sweep.orphaned
    );
    println!("selector map stale? {}", selector.is_stale(&coordinator));
    selector.refresh(&coordinator);
    for task in [0usize, 1, 2] {
        println!("  task {task} now routed to {:?}", selector.route(task));
    }
}
