//! Multi-tenant training with an Aggregator failure mid-run.
//!
//! ```bash
//! cargo run --release --example multi_task
//! ```
//!
//! Four federated tasks share one population of 2 000 devices.  The
//! Coordinator places the tasks on two persistent Aggregators by estimated
//! workload, Selectors route eligible devices (by capability tier) to tasks
//! with positive demand, and 30 virtual minutes in, Aggregator 0 crashes:
//! its buffered updates are lost, uploads addressed to it die in transit,
//! and once its heartbeats go silent long enough the Coordinator reassigns
//! the orphaned tasks to the survivor.  Training resumes and every task
//! still converges — the fault-tolerance story of Sections 6.2–6.3 and
//! Appendix E.4.

use papaya_core::TaskConfig;
use papaya_data::population::{Population, PopulationConfig};
use papaya_sim::scenario::{EvalPolicy, FleetSpec, RunLimits, Scenario};

fn main() {
    let population = Population::generate(&PopulationConfig::default().with_size(2000), 7);
    let scenario = Scenario::builder()
        .population(population)
        // All three aggregation strategies behind the same control plane.
        .task(TaskConfig::async_task("keyboard-lm", 64, 16))
        .task(TaskConfig::async_task("speech-kws", 32, 8).with_min_capability_tier(1))
        .task(TaskConfig::sync_task("photo-ranker", 40, 0.3))
        .task(TaskConfig::async_task("smart-reply", 24, 8).with_min_capability_tier(2))
        .task(TaskConfig::timed_hybrid_task("health-study", 16, 32, 600.0))
        .fleet(FleetSpec::new(2, 3))
        .limits(RunLimits::default().with_max_virtual_time_hours(2.0))
        .eval(EvalPolicy::default().with_interval_s(300.0))
        .crash_at(1800.0, 0)
        .seed(7)
        .build();

    println!("5 tasks, 2000 shared devices, 2 aggregators; aggregator 0 crashes at t=30min\n");
    let result = scenario.run();

    println!(
        "{:<14} {:>6} {:>10} {:>10} {:>8} {:>8} {:>10} {:>8}",
        "task", "moved", "init loss", "final", "trips", "updates", "staleness", "lost buf"
    );
    for task in &result.tasks {
        println!(
            "{:<14} {:>6} {:>10.4} {:>10.4} {:>8} {:>8} {:>10.2} {:>8}",
            task.name,
            task.reassignments,
            task.initial_loss,
            task.final_loss,
            task.comm_trips(),
            task.server_updates(),
            task.summary.mean_staleness,
            task.lost_buffered_updates,
        );
    }

    let cp = &result.fleet.control_plane;
    println!(
        "\nfleet over {:.1} virtual hours (stopped: {}):",
        result.virtual_hours, result.stop_reason
    );
    println!(
        "  comm trips:            {:>8}",
        result.fleet.total_comm_trips
    );
    println!(
        "  server updates:        {:>8}",
        result.fleet.total_server_updates
    );
    println!(
        "  mean active clients:   {:>8.1}",
        result.fleet.mean_active_clients
    );
    println!("  aggregator failures:   {:>8}", cp.aggregator_failures);
    println!("  task reassignments:    {:>8}", cp.task_reassignments);
    println!("  stale-route refusals:  {:>8}", cp.stale_route_refusals);
    println!(
        "  updates lost in transit:{:>7}",
        cp.lost_in_transit_updates
    );
    println!(
        "  buffered updates lost: {:>8}",
        result.fleet.total_lost_buffered_updates
    );
    println!("  final map sequence:    {:>8}", cp.final_map_sequence);
}
