//! AsyncFL vs SyncFL: the paper's headline comparison in miniature.
//!
//! ```bash
//! cargo run --release --example async_vs_sync
//! ```
//!
//! Runs the same task with synchronous rounds (30 % over-selection) and with
//! buffered asynchronous aggregation at the same concurrency, to the same
//! target loss, and reports wall-clock (virtual) time, communication trips,
//! server-update frequency, and utilization.

use papaya_core::client::ClientTrainer;
use papaya_core::surrogate::{SurrogateConfig, SurrogateObjective};
use papaya_core::TaskConfig;
use papaya_data::population::{Population, PopulationConfig};
use papaya_sim::scenario::{EvalPolicy, RunLimits, Scenario, TaskReport};
use std::sync::Arc;

fn run(
    task: TaskConfig,
    population: &Population,
    trainer: &Arc<SurrogateObjective>,
    target: f64,
) -> TaskReport {
    // Evaluate often: time-to-target is quantized by the evaluation
    // interval, and a coarse interval drowns the comparison in noise.
    Scenario::builder()
        .population(population.clone())
        .task_with_trainer(task, trainer.clone())
        .limits(
            RunLimits::default()
                .with_target_loss(target)
                .with_max_virtual_time_hours(100.0),
        )
        .eval(EvalPolicy::default().with_interval_s(10.0))
        .seed(7)
        .build()
        .run()
        .into_single()
}

fn main() {
    let concurrency = 260;
    let population = Population::generate(&PopulationConfig::default().with_size(5_000), 7);
    let trainer = Arc::new(SurrogateObjective::new(
        &population,
        SurrogateConfig::default(),
        7,
    ));
    let all: Vec<usize> = (0..trainer.num_clients()).collect();
    let initial = trainer.evaluate(&trainer.initial_parameters(), &all);
    let floor = trainer.evaluate(&trainer.population_optimum(), &all);
    let target = floor + 0.05 * (initial - floor);
    println!("initial loss {initial:.3}, floor {floor:.3}, target {target:.3}\n");

    let sync = run(
        TaskConfig::sync_task("sync", concurrency, 0.3),
        &population,
        &trainer,
        target,
    );
    let async_fl = run(
        TaskConfig::async_task("async", concurrency, 32),
        &population,
        &trainer,
        target,
    );

    let fmt = |r: &TaskReport| {
        format!(
            "time to target = {:>7} h | trips = {:6} | server updates/h = {:8.1} | mean active = {:5.1}",
            r.hours_to_target
                .map(|h| format!("{h:.2}"))
                .unwrap_or_else(|| ">cap".into()),
            r.comm_trips(),
            r.summary.server_updates_per_hour,
            r.summary.mean_active_clients,
        )
    };
    println!("SyncFL  (30% over-selection): {}", fmt(&sync));
    println!("AsyncFL (K = 32)            : {}", fmt(&async_fl));
    if let (Some(s), Some(a)) = (sync.hours_to_target, async_fl.hours_to_target) {
        println!(
            "\nAsyncFL is {:.1}x faster and {:.1}x more communication-efficient on this run.",
            s / a,
            sync.comm_trips() as f64 / async_fl.comm_trips() as f64
        );
    }
}
