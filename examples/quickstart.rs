//! Quickstart: train a federated task asynchronously with FedBuff.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a synthetic population of 2,000 heterogeneous devices, trains the
//! fast surrogate objective with buffered asynchronous aggregation
//! (concurrency 128, aggregation goal 32), and prints the loss curve and the
//! run summary.

use papaya_core::surrogate::{SurrogateConfig, SurrogateObjective};
use papaya_core::TaskConfig;
use papaya_data::population::{Population, PopulationConfig};
use papaya_sim::scenario::{EvalPolicy, RunLimits, Scenario};
use std::sync::Arc;

fn main() {
    // 1. A synthetic device population: heavy-tailed data volumes, speeds
    //    spanning two orders of magnitude, 8 % dropouts.
    let population = Population::generate(&PopulationConfig::default().with_size(2_000), 42);
    println!(
        "population: {} devices, execution-time/examples correlation = {:.2}",
        population.len(),
        population.time_examples_correlation()
    );

    // 2. A federated objective. The surrogate is a heterogeneous quadratic
    //    that trains in microseconds per client; swap in
    //    `papaya_lm::LmClientTrainer` for the real character-level LSTM.
    let trainer = Arc::new(SurrogateObjective::new(
        &population,
        SurrogateConfig::default(),
        42,
    ));

    // 3. An asynchronous task: 128 clients training concurrently, server
    //    update every 32 client updates, stale updates down-weighted by
    //    1/sqrt(1+s).  Composed through the unified Scenario builder — the
    //    same entrypoint drives multi-tenant fleets with crash schedules.
    let scenario = Scenario::builder()
        .population(population)
        .task_with_trainer(TaskConfig::async_task("quickstart", 128, 32), trainer)
        .limits(RunLimits::default().with_max_virtual_time_hours(2.0))
        .eval(EvalPolicy::default().with_interval_s(600.0))
        .seed(42)
        .build();

    // 4. Run the discrete-event simulation of the whole system.
    let report = scenario.run();
    let result = report.single();

    println!("\nloss curve (virtual hours, population loss):");
    for (hours, loss) in result.metrics.loss_curve.iter().step_by(2) {
        println!("  {hours:5.2} h   {loss:.4}");
    }
    println!("\nsummary:");
    println!("  stopped because      : {}", report.stop_reason);
    println!("  server model updates : {}", result.server_updates());
    println!("  client updates (trips): {}", result.comm_trips());
    println!(
        "  mean staleness       : {:.2}",
        result.summary.mean_staleness
    );
    println!(
        "  mean active clients  : {:.1} / 128",
        result.summary.mean_active_clients
    );
    println!("  final loss           : {:.4}", result.final_loss);
}
