//! Federated training of the character-level LSTM language model.
//!
//! ```bash
//! cargo run --release --example language_model
//! ```
//!
//! Builds a small non-IID federated text corpus, trains the LSTM with
//! asynchronous FedBuff through the system simulator, and reports test
//! perplexity for all clients and for the heavy-data clients (the Table 1
//! metric).

use papaya_core::client::ClientTrainer;
use papaya_core::TaskConfig;
use papaya_data::dataset::FederatedTextDataset;
use papaya_data::population::{Population, PopulationConfig};
use papaya_lm::{LmClientTrainer, LmConfig};
use papaya_sim::scenario::{EvalPolicy, RunLimits, Scenario};
use std::sync::Arc;

fn main() {
    let population = Population::generate(&PopulationConfig::default().with_size(120), 3);
    let dataset = Arc::new(FederatedTextDataset::generate(&population, 4, 3));
    println!(
        "federated corpus: {} clients, {} training sequences, vocabulary of {} characters",
        dataset.len(),
        dataset.total_train_examples(),
        dataset.vocab_size()
    );

    let trainer = Arc::new(LmClientTrainer::new(dataset, LmConfig::tiny()).with_max_sequences(12));
    let all: Vec<usize> = (0..population.len()).collect();
    let heavy = population.ids_above_example_percentile(75.0);
    let initial_ppl = trainer.perplexity(&trainer.initial_parameters(), &all);
    println!(
        "initial test perplexity: {initial_ppl:.2} (uniform would be {:.0})\n",
        28.0
    );

    let report = Scenario::builder()
        .population(population)
        .task_with_trainer(TaskConfig::async_task("char-lm", 16, 4), trainer.clone())
        .limits(
            RunLimits::default()
                .with_max_client_updates(400)
                .with_max_virtual_time_hours(200.0),
        )
        .eval(
            EvalPolicy::default()
                .with_interval_s(20_000.0)
                .with_sample_size(24),
        )
        .seed(3)
        .build()
        .run();
    let virtual_hours = report.virtual_hours;
    let result = report.into_single();

    println!(
        "after {} client updates ({} server updates, {:.1} virtual hours):",
        result.comm_trips(),
        result.server_updates(),
        virtual_hours
    );
    println!(
        "  test perplexity, all clients        : {:.2}",
        trainer.perplexity(&result.final_params, &all)
    );
    println!(
        "  test perplexity, heavy-data clients : {:.2}",
        trainer.perplexity(&result.final_params, &heavy)
    );
}
