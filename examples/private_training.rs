//! User-level differential privacy end to end.
//!
//! ```bash
//! cargo run --release --example private_training
//! ```
//!
//! Part 1 is the no-op proof the DP layer rests on: an identical FedBuff
//! scenario is trained twice — in the clear and with a *noiseless* DP
//! configuration (`noise_multiplier = 0`, unreachable clip bound) — and
//! the two runs must match **bit for bit** on counters and final
//! parameters.  The decorator only ever changes the numerics when the
//! guarantee needs it to.
//!
//! Part 2 turns the mechanism on: clipping binds, every release carries
//! Gaussian noise, and the privacy accountant composes a finite
//! `(ε, δ)` across releases, printed as the cumulative ε trajectory.
//!
//! Part 3 stacks DP over secure aggregation — clipping on the client
//! before masking, noise on the decoded release (where the TEE would add
//! it) — the full "private" column of the paper's title.

use papaya_core::config::SecAggMode;
use papaya_core::{DpConfig, TaskConfig};
use papaya_data::population::{Population, PopulationConfig};
use papaya_sim::scenario::{EvalPolicy, Report, RunLimits, Scenario};

fn population() -> Population {
    Population::generate(&PopulationConfig::default().with_size(600), 61)
}

fn run(task: TaskConfig) -> Report {
    Scenario::builder()
        .population(population())
        .task(task)
        .limits(RunLimits::default().with_max_virtual_time_hours(0.75))
        .eval(EvalPolicy::default().with_interval_s(600.0))
        .seed(9)
        .build()
        .run()
}

fn main() {
    println!("== Part 1: noiseless DP is a bit-exact no-op ==\n");
    let base = || TaskConfig::async_task("keyboard-lm", 32, 8);
    let clear = run(base());
    let noiseless = run(base().with_dp(DpConfig::new(1e9, 0.0)));
    let (c, n) = (&clear.single().metrics, &noiseless.single().metrics);
    assert_eq!(c.comm_trips, n.comm_trips);
    assert_eq!(c.server_updates, n.server_updates);
    assert_eq!(c.aggregated_updates, n.aggregated_updates);
    assert_eq!(
        clear.single().final_params,
        noiseless.single().final_params,
        "noiseless DP must be bit-exact against the clear run"
    );
    println!(
        "clear vs dp(z=0): {} uploads, {} server updates, final params IDENTICAL (bitwise)",
        c.comm_trips, c.server_updates
    );
    println!(
        "dp bookkeeping still ran: {} accounted releases, 0 clipped, epsilon = inf (no noise)\n",
        n.dp.releases
    );

    println!("== Part 2: the mechanism with real noise ==\n");
    let dp = DpConfig::new(2.0, 1.0)
        .with_sampling_rate(8.0 / 600.0)
        .with_target_delta(1e-6);
    let private = run(base().with_example_weighting(false).with_dp(dp));
    let task = private.single();
    let m = &task.metrics;
    assert!(m.dp.releases > 0, "no DP release happened");
    assert_eq!(m.dp.releases, m.server_updates);
    assert!(m.dp.cumulative_epsilon.is_finite());
    println!(
        "clip bound C = {}, noise multiplier z = {}, q = {:.4}, delta = {:.0e}",
        dp.clip_bound, dp.noise_multiplier, dp.sampling_rate, dp.target_delta
    );
    println!(
        "{} releases, {:.0}% of accepted updates clipped, noise std {:.4} per release",
        m.dp.releases,
        100.0 * m.dp.clip_fraction(),
        m.dp.release_trace.last().map_or(0.0, |r| r.noise_std),
    );
    let trace = &m.dp.release_trace;
    let checkpoints = [0, trace.len() / 4, trace.len() / 2, trace.len() - 1];
    println!("cumulative epsilon trajectory:");
    for &i in &checkpoints {
        let release = trace[i];
        println!(
            "  release {:>4} @ {:>7.0}s: epsilon = {:.3}",
            i + 1,
            release.time_s,
            release.cumulative_epsilon
        );
    }
    println!(
        "loss {:.4} -> {:.4} (clear run reached {:.4}): the cost of ({:.2}, {:.0e})-DP",
        task.initial_loss,
        task.final_loss,
        clear.single().final_loss,
        m.dp.cumulative_epsilon,
        dp.target_delta
    );
    println!(
        "(epsilon modeled with Poisson-sampling amplification at q = {:.4}; \
         FedBuff selection is speed-biased, so the conservative certificate uses q = 1)\n",
        dp.sampling_rate
    );
    assert!(
        task.final_loss < task.initial_loss,
        "private run did not learn"
    );

    println!("== Part 3: DP stacked over secure aggregation ==\n");
    let stacked = run(base()
        .with_example_weighting(false)
        .with_secagg(SecAggMode::AsyncSecAgg)
        .with_dp(dp));
    let sm = &stacked.single().metrics;
    assert_eq!(sm.secure.tsa_key_releases, sm.server_updates);
    assert_eq!(sm.dp.releases, sm.server_updates);
    assert_eq!(
        sm.secure.out_of_range_releases, 0,
        "clipped-then-masked decode must match the reference"
    );
    println!(
        "secure+dp: {} masked uploads, {} TSA key releases, every release noised and accounted",
        sm.secure.masked_updates, sm.secure.tsa_key_releases
    );
    println!(
        "cumulative epsilon {:.3} at ~{:.0} TEE-boundary bytes/client — practical, private, scalable",
        sm.dp.cumulative_epsilon,
        sm.secure.tee_bytes_in_per_client()
    );
}
