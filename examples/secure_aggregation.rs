//! Asynchronous secure aggregation end to end.
//!
//! ```bash
//! cargo run --release --example secure_aggregation
//! ```
//!
//! Walks through the full protocol of Section 5 / Appendix B: the TSA
//! publishes its trusted binary in a verifiable log and prepares attested
//! Diffie–Hellman initial messages; ten clients verify the attestation, mask
//! their updates with seed-expanded one-time pads, and upload; the untrusted
//! aggregator sums masked updates and asks the TSA for the aggregated
//! unmask.  The example also shows the failure paths: a tampered seed, a
//! replayed key-exchange index, and a wrong trusted binary.

use papaya_crypto::chacha20::ChaCha20Rng;
use papaya_secagg::{SecAggClient, SecAggConfig, Tsa, UntrustedAggregator};

fn main() {
    let clients = 10usize;
    let vector_len = 1_000usize;
    // Threshold: the TSA refuses to unmask unless at least 8 clients
    // contributed, so the server can never isolate a small group.
    let config = SecAggConfig::insecure_fast(vector_len, 8);

    // The enclave boots, records its binary in the verifiable log, and
    // pre-generates attested key-exchange initial messages.
    let mut tsa = Tsa::new(&config, [0x5Au8; 32]);
    let publication = tsa.publication();
    let mut rng = ChaCha20Rng::from_seed([1u8; 32]);
    let initial_messages = tsa.prepare_initial_messages(clients, &mut rng);
    println!("TSA prepared {} attested key-exchange messages", clients);

    // Each client verifies the attestation + log inclusion, masks its
    // update, and uploads.
    let mut aggregator = UntrustedAggregator::new(&config);
    let mut expected_sum = vec![0.0f64; vector_len];
    for (i, init) in initial_messages.iter().enumerate() {
        let update: Vec<f32> = (0..vector_len)
            .map(|j| ((i + j) % 13) as f32 * 0.01 - 0.06)
            .collect();
        for (acc, u) in expected_sum.iter_mut().zip(update.iter()) {
            *acc += *u as f64;
        }
        let msg = SecAggClient::participate(&update, init, &publication, &config, &mut rng)
            .expect("attestation should verify");
        aggregator
            .submit(msg, &mut tsa)
            .expect("TSA accepts the seed");
    }
    println!("10 masked updates aggregated; the server never saw a plaintext update.");

    let sum = aggregator.finalize(&mut tsa).expect("threshold met");
    let max_err = sum
        .iter()
        .zip(expected_sum.iter())
        .map(|(s, e)| (*s as f64 - e).abs())
        .fold(0.0f64, f64::max);
    println!("unmasked aggregate matches the true sum (max error {max_err:.2e})");

    let stats = tsa.boundary_stats();
    println!(
        "host->TEE traffic: {} bytes total ({} bytes/client) — independent of the {}-element model",
        stats.bytes_in,
        stats.bytes_in / clients as u64,
        vector_len
    );

    // Failure paths.
    println!("\nfailure handling:");
    let extra = tsa.prepare_initial_messages(2, &mut rng);
    let mut tampered =
        SecAggClient::participate(&[0.0; 1_000], &extra[0], &publication, &config, &mut rng)
            .unwrap();
    let n = tampered.completing.encrypted_seed.len();
    tampered.completing.encrypted_seed[n / 2] ^= 1;
    println!(
        "  tampered encrypted seed  -> {:?}",
        aggregator.submit(tampered, &mut tsa).unwrap_err()
    );

    let mut replayed =
        SecAggClient::participate(&[9.0; 1_000], &extra[1], &publication, &config, &mut rng)
            .unwrap();
    replayed.completing.index = initial_messages[0].index;
    println!(
        "  replayed key-exchange id -> {:?}",
        aggregator.submit(replayed, &mut tsa).unwrap_err()
    );

    let mut wrong_binary = publication.clone();
    wrong_binary.expected_measurement = [0u8; 32];
    println!(
        "  unexpected trusted binary-> {:?}",
        SecAggClient::participate(&[0.0; 1_000], &extra[1], &wrong_binary, &config, &mut rng)
            .unwrap_err()
    );
}
