//! Asynchronous secure aggregation end to end.
//!
//! ```bash
//! cargo run --release --example secure_aggregation
//! ```
//!
//! Part 1 walks through the full protocol of Section 5 / Appendix B: the
//! TSA publishes its trusted binary in a verifiable log and prepares
//! attested Diffie–Hellman initial messages; ten clients verify the
//! attestation, mask their updates with seed-expanded one-time pads, and
//! upload; the untrusted aggregator sums masked updates and asks the TSA
//! for the aggregated unmask.  It also shows the failure paths: a tampered
//! seed, a replayed key-exchange index, and a wrong trusted binary.
//!
//! Part 2 runs the same protocol *inside the simulation pipeline*: an
//! identical FedBuff scenario is trained twice, in the clear and with
//! `SecAggMode::AsyncSecAgg`, and the report shows they agree to
//! fixed-point tolerance while the TSA released exactly one key per buffer
//! at a few hundred boundary bytes per client.

use papaya_core::config::SecAggMode;
use papaya_core::TaskConfig;
use papaya_crypto::chacha20::ChaCha20Rng;
use papaya_data::population::{Population, PopulationConfig};
use papaya_secagg::{SecAggClient, SecAggConfig, Tsa, UntrustedAggregator};
use papaya_sim::scenario::{EvalPolicy, RunLimits, Scenario};

fn main() {
    println!("== Part 1: the protocol, step by step ==\n");
    let clients = 10usize;
    let vector_len = 1_000usize;
    // Threshold: the TSA refuses to unmask unless at least 8 clients
    // contributed, so the server can never isolate a small group.
    let config = SecAggConfig::insecure_fast(vector_len, 8);

    // The enclave boots, records its binary in the verifiable log, and
    // pre-generates attested key-exchange initial messages.
    let mut tsa = Tsa::new(&config, [0x5Au8; 32]);
    let publication = tsa.publication();
    let mut rng = ChaCha20Rng::from_seed([1u8; 32]);
    let initial_messages = tsa.prepare_initial_messages(clients, &mut rng);
    println!("TSA prepared {} attested key-exchange messages", clients);

    // Each client verifies the attestation + log inclusion, masks its
    // update, and uploads.
    let mut aggregator = UntrustedAggregator::new(&config);
    let mut expected_sum = vec![0.0f64; vector_len];
    for (i, init) in initial_messages.iter().enumerate() {
        let update: Vec<f32> = (0..vector_len)
            .map(|j| ((i + j) % 13) as f32 * 0.01 - 0.06)
            .collect();
        for (acc, u) in expected_sum.iter_mut().zip(update.iter()) {
            *acc += *u as f64;
        }
        let msg = SecAggClient::participate(&update, init, &publication, &config, &mut rng)
            .expect("attestation should verify");
        aggregator
            .submit(msg, &mut tsa)
            .expect("TSA accepts the seed");
    }
    println!("10 masked updates aggregated; the server never saw a plaintext update.");

    let sum = aggregator.finalize(&mut tsa).expect("threshold met");
    let max_err = sum
        .iter()
        .zip(expected_sum.iter())
        .map(|(s, e)| (*s as f64 - e).abs())
        .fold(0.0f64, f64::max);
    println!("unmasked aggregate matches the true sum (max error {max_err:.2e})");

    let stats = tsa.boundary_stats();
    println!(
        "host->TEE traffic: {} bytes total ({} bytes/client) — independent of the {}-element model",
        stats.bytes_in,
        stats.bytes_in / clients as u64,
        vector_len
    );

    // Failure paths.
    println!("\nfailure handling:");
    let extra = tsa.prepare_initial_messages(2, &mut rng);
    let mut tampered =
        SecAggClient::participate(&[0.0; 1_000], &extra[0], &publication, &config, &mut rng)
            .unwrap();
    let n = tampered.completing.encrypted_seed.len();
    tampered.completing.encrypted_seed[n / 2] ^= 1;
    println!(
        "  tampered encrypted seed  -> {:?}",
        aggregator.submit(tampered, &mut tsa).unwrap_err()
    );

    let mut replayed =
        SecAggClient::participate(&[9.0; 1_000], &extra[1], &publication, &config, &mut rng)
            .unwrap();
    replayed.completing.index = initial_messages[0].index;
    println!(
        "  replayed key-exchange id -> {:?}",
        aggregator.submit(replayed, &mut tsa).unwrap_err()
    );

    let mut wrong_binary = publication.clone();
    wrong_binary.expected_measurement = [0u8; 32];
    println!(
        "  unexpected trusted binary-> {:?}",
        SecAggClient::participate(&[0.0; 1_000], &extra[1], &wrong_binary, &config, &mut rng)
            .unwrap_err()
    );

    println!("\n== Part 2: the protocol inside the Scenario pipeline ==\n");
    let population = Population::generate(&PopulationConfig::default().with_size(400), 11);
    let run = |mode: SecAggMode| {
        Scenario::builder()
            .population(population.clone())
            .task(TaskConfig::async_task("secure-fedbuff", 24, 6).with_secagg(mode))
            .limits(RunLimits::default().with_max_virtual_time_hours(0.5))
            .eval(EvalPolicy::default().with_interval_s(600.0))
            .seed(11)
            .build()
            .run()
    };
    let clear = run(SecAggMode::Disabled);
    let secure = run(SecAggMode::AsyncSecAgg);
    let (c, s) = (clear.single(), secure.single());
    let max_param_diff = c
        .final_params
        .as_slice()
        .iter()
        .zip(s.final_params.as_slice())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    println!("identical FedBuff scenario, clear vs AsyncSecAgg:");
    println!(
        "  loss            {:.4} -> {:.4}  vs  {:.4} -> {:.4}",
        c.initial_loss, c.final_loss, s.initial_loss, s.final_loss
    );
    println!(
        "  server updates  {} vs {} (every secure release was a TSA key release: {})",
        c.server_updates(),
        s.server_updates(),
        s.metrics.secure.tsa_key_releases
    );
    println!(
        "  masked updates  {} accepted, {} dropped by policy, {} buffers dropped on crash",
        s.metrics.secure.masked_updates,
        s.metrics.secure.masked_discarded,
        s.metrics.secure.buffers_dropped_unreleased
    );
    println!(
        "  TEE boundary    {} bytes in total, {:.0} bytes per masked client",
        s.metrics.secure.tee_bytes_in,
        s.metrics.secure.tee_bytes_in_per_client()
    );
    println!(
        "  fidelity        max |secure - clear| parameter gap {:.2e}, max per-release quantization error {:.2e}",
        max_param_diff,
        s.metrics.secure.max_quantization_error()
    );
    assert!(
        max_param_diff < 1e-2,
        "secure run diverged from the clear run"
    );
}
