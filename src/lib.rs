//! Umbrella crate for the PAPAYA reproduction.
//!
//! Re-exports the workspace crates so the runnable examples under
//! `examples/` and the cross-crate integration tests under `tests/` can use
//! a single dependency.  Library users should depend on the individual
//! crates directly:
//!
//! * [`papaya_core`] — FedBuff, synchronous rounds, server optimizers;
//! * [`papaya_sim`] — the discrete-event system simulator;
//! * [`papaya_secagg`] — asynchronous secure aggregation;
//! * [`papaya_crypto`] — the cryptographic primitives;
//! * [`papaya_data`] — synthetic populations and datasets;
//! * [`papaya_nn`] / [`papaya_lm`] — the neural-network substrate and the
//!   character-level LSTM language model.

pub use papaya_core;
pub use papaya_crypto;
pub use papaya_data;
pub use papaya_lm;
pub use papaya_nn;
pub use papaya_secagg;
pub use papaya_sim;
