//! Property-based tests over core data structures and protocol invariants.

use papaya_core::aggregator::Aggregator;
use papaya_core::client::ClientUpdate;
use papaya_core::fedbuff::FedBuffAggregator;
use papaya_core::staleness::StalenessWeighting;
use papaya_crypto::merkle::MerkleLog;
use papaya_crypto::sha256::sha256;
use papaya_nn::params::ParamVec;
use papaya_secagg::fixed_point::FixedPointCodec;
use papaya_secagg::group::{GroupParams, GroupVec};
use papaya_secagg::mask::expand_mask;
use proptest::prelude::*;

proptest! {
    /// Fixed-point encode/decode round-trips within one quantum for values in
    /// the representable range (Appendix D).
    #[test]
    fn fixed_point_roundtrip(v in -1_000.0f32..1_000.0f32) {
        let codec = FixedPointCodec::default_for_updates();
        let decoded = codec.decode_value(codec.encode_value(v));
        // One quantum of fixed-point error plus f32 representation error.
        let tolerance = 1.0 / codec.scale() as f32 + v.abs() * f32::EPSILON * 4.0;
        prop_assert!((decoded - v).abs() <= tolerance);
    }

    /// Group addition of encoded values matches real addition (no wrap-around
    /// inside the representable range).
    #[test]
    fn fixed_point_additivity(a in -500.0f32..500.0, b in -500.0f32..500.0) {
        let codec = FixedPointCodec::default_for_updates();
        let sum = codec.decode_value(
            codec.params().add(codec.encode_value(a), codec.encode_value(b)),
        );
        let tolerance = 2.0 / codec.scale() as f32 + (a + b).abs() * f32::EPSILON * 4.0;
        prop_assert!((sum - (a + b)).abs() < tolerance);
    }

    /// Masking then unmasking with the same seed is the identity on group
    /// vectors — the core one-time-pad invariant of AsyncSecAgg.
    #[test]
    fn mask_unmask_identity(values in proptest::collection::vec(0u64..u32::MAX as u64, 1..64), seed in any::<[u8; 16]>()) {
        let params = GroupParams::z2_32();
        let plain = GroupVec::from_values(params, values);
        let mask = expand_mask(&seed, params, plain.len());
        let unmasked = plain.add(&mask).sub(&mask);
        prop_assert_eq!(unmasked, plain);
    }

    /// Group addition is commutative and associative for arbitrary vectors.
    #[test]
    fn group_addition_laws(
        a in proptest::collection::vec(0u64..1_000_000u64, 8),
        b in proptest::collection::vec(0u64..1_000_000u64, 8),
        c in proptest::collection::vec(0u64..1_000_000u64, 8),
        modulus in 2u64..1_000_000u64,
    ) {
        let params = GroupParams::new(modulus);
        let a = GroupVec::from_values(params, a);
        let b = GroupVec::from_values(params, b);
        let c = GroupVec::from_values(params, c);
        prop_assert_eq!(a.add(&b), b.add(&a));
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
    }

    /// Merkle inclusion proofs verify for every leaf of logs of arbitrary
    /// size, and fail for a different record.
    #[test]
    fn merkle_inclusion_sound_and_complete(n in 1usize..40, probe in 0usize..40) {
        let mut log = MerkleLog::new();
        for i in 0..n {
            log.append(format!("record-{i}").into_bytes());
        }
        let index = probe % n;
        let proof = log.inclusion_proof(index).unwrap();
        let root = log.root();
        let record = format!("record-{index}");
        let genuine = proof.verify(&root, record.as_bytes(), index, n);
        let forged = proof.verify(&root, b"forged record", index, n);
        prop_assert!(genuine);
        prop_assert!(!forged);
    }

    /// Consistency proofs verify for every prefix of an append-only log.
    #[test]
    fn merkle_consistency_for_all_prefixes(n in 2usize..32, old in 1usize..32) {
        let old = 1 + old % (n - 1);
        let mut log = MerkleLog::new();
        for i in 0..n {
            log.append(format!("record-{i}").into_bytes());
        }
        let proof = log.consistency_proof(old).unwrap();
        prop_assert!(proof.verify(
            &log.root_at(old).unwrap(),
            old,
            &log.root(),
            n
        ));
    }

    /// SHA-256 is deterministic and sensitive to single-bit flips.
    #[test]
    fn sha256_deterministic_and_sensitive(mut data in proptest::collection::vec(any::<u8>(), 1..256), flip in any::<u8>()) {
        let original = sha256(&data);
        prop_assert_eq!(original, sha256(&data));
        let idx = flip as usize % data.len();
        data[idx] ^= 0x01;
        prop_assert_ne!(original, sha256(&data));
    }

    /// ParamVec byte serialization round-trips exactly.
    #[test]
    fn param_vec_bytes_roundtrip(values in proptest::collection::vec(-1.0e6f32..1.0e6, 0..128)) {
        let v = ParamVec::from_vec(values);
        prop_assert_eq!(ParamVec::from_bytes(&v.to_bytes()), v);
    }

    /// Staleness weights are in (0, 1] and non-increasing in staleness.
    #[test]
    fn staleness_weights_bounded_and_monotone(s in 0u64..10_000) {
        for scheme in [
            StalenessWeighting::Constant,
            StalenessWeighting::PolynomialHalf,
            StalenessWeighting::Linear,
            StalenessWeighting::Exponential,
        ] {
            let w = scheme.weight(s);
            prop_assert!(w > 0.0 && w <= 1.0);
            prop_assert!(scheme.weight(s + 1) <= w);
        }
    }

    /// The FedBuff aggregate is a convex combination of the buffered deltas:
    /// each coordinate lies within the min/max of the contributed values.
    #[test]
    fn fedbuff_aggregate_is_convex_combination(
        deltas in proptest::collection::vec(proptest::collection::vec(-10.0f32..10.0, 4), 2..12),
        examples in proptest::collection::vec(1usize..100, 12),
    ) {
        let goal = deltas.len();
        let mut agg = FedBuffAggregator::new(goal, StalenessWeighting::PolynomialHalf, None);
        for (i, delta) in deltas.iter().enumerate() {
            agg.accumulate(
                ClientUpdate {
                    client_id: i,
                    delta: ParamVec::from_vec(delta.clone()),
                    num_examples: examples[i % examples.len()],
                    start_version: (i % 3) as u64,
                    train_loss: 0.0,
                },
                2,
                i as f64,
            );
        }
        let out = agg.take(0.0).unwrap();
        for j in 0..4 {
            let column: Vec<f32> = deltas.iter().map(|d| d[j]).collect();
            let min = column.iter().cloned().fold(f32::INFINITY, f32::min);
            let max = column.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            prop_assert!(out.as_slice()[j] >= min - 1e-4 && out.as_slice()[j] <= max + 1e-4);
        }
    }
}
