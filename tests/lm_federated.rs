//! Cross-crate integration test: the character-level LSTM trains federatedly
//! through the full simulator and improves held-out perplexity (the Table 1
//! pipeline at a tiny scale).

use papaya_core::client::ClientTrainer;
use papaya_core::TaskConfig;
use papaya_data::dataset::FederatedTextDataset;
use papaya_data::population::{Population, PopulationConfig};
use papaya_lm::{LmClientTrainer, LmConfig};
use papaya_sim::scenario::{EvalPolicy, RunLimits, Scenario};
use papaya_sim::ServerOptimizerKind;
use std::sync::Arc;

#[test]
fn federated_lstm_improves_perplexity_through_the_simulator() {
    let population = Population::generate(&PopulationConfig::default().with_size(60), 31);
    let dataset = Arc::new(FederatedTextDataset::generate(&population, 4, 31));
    let trainer = Arc::new(LmClientTrainer::new(dataset, LmConfig::tiny()).with_max_sequences(8));

    let all: Vec<usize> = (0..population.len()).collect();
    let initial_ppl = trainer.perplexity(&trainer.initial_parameters(), &all);
    // A freshly initialized model is roughly uniform over the vocabulary.
    assert!(
        initial_ppl > 15.0 && initial_ppl < 40.0,
        "initial {initial_ppl}"
    );

    let result = Scenario::builder()
        .population(population)
        .task_with_trainer(TaskConfig::async_task("lm", 12, 4), trainer.clone())
        .limits(
            RunLimits::default()
                .with_max_client_updates(160)
                .with_max_virtual_time_hours(300.0),
        )
        .eval(
            EvalPolicy::default()
                .with_interval_s(40_000.0)
                .with_sample_size(16),
        )
        .server_optimizer(ServerOptimizerKind::FedAvg)
        .seed(31)
        .build()
        .run()
        .into_single();

    assert!(
        result.server_updates() >= 30,
        "updates {}",
        result.server_updates()
    );
    let final_ppl = trainer.perplexity(&result.final_params, &all);
    assert!(
        final_ppl < 0.85 * initial_ppl,
        "perplexity did not improve enough: {initial_ppl:.2} -> {final_ppl:.2}"
    );
}
