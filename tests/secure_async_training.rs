//! Cross-crate integration test: buffered asynchronous aggregation with the
//! TEE-based secure-aggregation protocol in the loop.
//!
//! Every aggregation buffer is computed twice: once in the clear with
//! [`FedBuffAggregator`]-style weighted sums, and once through the full
//! AsyncSecAgg protocol (masking, seed transport, TSA unmasking).  The two
//! paths must agree to fixed-point precision, the TSA must never see more
//! than a constant number of bytes per client, and the server must never see
//! an individual plaintext update.

use papaya_core::client::ClientTrainer;
use papaya_core::server_opt::{FedAvg, ServerOptimizer};
use papaya_core::surrogate::{SurrogateConfig, SurrogateObjective};
use papaya_crypto::chacha20::ChaCha20Rng;
use papaya_data::population::{Population, PopulationConfig};
use papaya_nn::params::ParamVec;
use papaya_secagg::{SecAggClient, SecAggConfig, Tsa, UntrustedAggregator};

#[test]
fn secure_buffers_match_cleartext_aggregation() {
    let population = Population::generate(&PopulationConfig::default().with_size(64), 23);
    let objective = SurrogateObjective::new(&population, SurrogateConfig::default(), 23);
    let dim = objective.parameter_count();

    let buffer_size = 8usize;
    let config = SecAggConfig::insecure_fast(dim, buffer_size);
    let mut tsa = Tsa::new(&config, [0x33u8; 32]);
    let publication = tsa.publication();
    let mut rng = ChaCha20Rng::from_seed([5u8; 32]);

    let mut model = objective.initial_parameters();
    let mut secure_model = model.clone();
    let mut opt_clear = FedAvg;
    let mut opt_secure = FedAvg;

    let all: Vec<usize> = (0..objective.num_clients()).collect();
    let initial_loss = objective.evaluate(&model, &all);

    for round in 0..4u64 {
        let initial_messages = tsa.prepare_initial_messages(buffer_size, &mut rng);
        let mut aggregator = UntrustedAggregator::new(&config);
        let mut clear_sum = ParamVec::zeros(dim);
        for (i, init) in initial_messages.iter().enumerate() {
            let client = (round as usize * buffer_size + i) % objective.num_clients();
            let result = objective.train(client, &secure_model, round * 100 + i as u64);
            // Clients upload the *unweighted* delta through SecAgg; the same
            // deltas are summed in the clear for comparison.
            clear_sum.add_scaled(&result.delta, 1.0);
            let msg = SecAggClient::participate(
                result.delta.as_slice(),
                init,
                &publication,
                &config,
                &mut rng,
            )
            .expect("attestation verifies");
            // The masked update must not equal the plaintext encoding.
            assert_ne!(
                msg.masked_update,
                config.codec.encode_vec(result.delta.as_slice()),
                "masked update leaked plaintext"
            );
            aggregator.submit(msg, &mut tsa).expect("TSA accepts");
        }
        let secure_sum = ParamVec::from_vec(aggregator.finalize(&mut tsa).expect("threshold met"));

        // Fixed-point error per element is bounded by clients / scale.
        let max_err = secure_sum
            .as_slice()
            .iter()
            .zip(clear_sum.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(max_err < 1e-2, "secure vs clear mismatch: {max_err}");

        // Apply the (mean) update to both models.
        let mut clear_delta = clear_sum.clone();
        clear_delta.scale(1.0 / buffer_size as f32);
        let mut secure_delta = secure_sum;
        secure_delta.scale(1.0 / buffer_size as f32);
        opt_clear.apply(&mut model, &clear_delta);
        opt_secure.apply(&mut secure_model, &secure_delta);
    }

    // Both models improved and stayed numerically close.
    let clear_loss = objective.evaluate(&model, &all);
    let secure_loss = objective.evaluate(&secure_model, &all);
    assert!(clear_loss < initial_loss);
    assert!(secure_loss < initial_loss);
    assert!((clear_loss - secure_loss).abs() < 0.05 * initial_loss);

    // Host→TEE traffic is constant per client, independent of the model size.
    let stats = tsa.boundary_stats();
    let per_client = stats.bytes_in as f64 / (4.0 * buffer_size as f64);
    assert!(
        per_client < 1_000.0,
        "per-client TEE traffic should be a few hundred bytes, got {per_client}"
    );
}

#[test]
fn tsa_refuses_to_unmask_below_threshold_even_mid_training() {
    let config = SecAggConfig::insecure_fast(16, 3);
    let mut tsa = Tsa::new(&config, [0x44u8; 32]);
    let publication = tsa.publication();
    let mut rng = ChaCha20Rng::from_seed([6u8; 32]);
    let inits = tsa.prepare_initial_messages(2, &mut rng);
    let mut aggregator = UntrustedAggregator::new(&config);
    for init in &inits {
        let msg = SecAggClient::participate(&[1.0f32; 16], init, &publication, &config, &mut rng)
            .unwrap();
        aggregator.submit(msg, &mut tsa).unwrap();
    }
    // Only 2 of the required 3 clients contributed: the server learns nothing.
    assert!(aggregator.finalize(&mut tsa).is_err());
}
