//! Cross-crate integration test for Section 7.4: over-selection introduces
//! sampling bias, asynchronous training does not.

use papaya_core::surrogate::{SurrogateConfig, SurrogateObjective};
use papaya_core::TaskConfig;
use papaya_data::population::{Population, PopulationConfig};
use papaya_data::stats::mean;
use papaya_sim::scenario::{EvalPolicy, RunLimits, Scenario, TaskReport};
use std::sync::Arc;

fn run(task: TaskConfig, population: &Population, trainer: &Arc<SurrogateObjective>) -> TaskReport {
    Scenario::builder()
        .population(population.clone())
        .task_with_trainer(task, trainer.clone())
        .limits(RunLimits::default().with_max_virtual_time_hours(4.0))
        .eval(EvalPolicy::default().with_interval_s(3600.0))
        .seed(29)
        .build()
        .run()
        .into_single()
}

#[test]
fn over_selection_biases_participation_async_does_not() {
    let population = Population::generate(&PopulationConfig::default().with_size(3_000), 29);
    let trainer = Arc::new(SurrogateObjective::new(
        &population,
        SurrogateConfig::default(),
        29,
    ));

    // Ground truth: SyncFL without over-selection aggregates every selected
    // client, so its participation distribution reflects the population.
    let ground_truth = run(
        TaskConfig::sync_task("no-os", 100, 0.0),
        &population,
        &trainer,
    );
    let sync_os = run(TaskConfig::sync_task("os", 130, 0.3), &population, &trainer);
    let async_fl = run(
        TaskConfig::async_task("async", 130, 32),
        &population,
        &trainer,
    );

    let truth_examples = ground_truth.metrics.aggregated_example_counts();
    let os_examples = sync_os.metrics.aggregated_example_counts();
    let async_examples = async_fl.metrics.aggregated_example_counts();
    assert!(truth_examples.len() > 100);
    assert!(os_examples.len() > 100);
    assert!(async_examples.len() > 100);

    // Over-selection drops the slowest clients, which are the heavy-data
    // clients, so its aggregated clients have fewer examples on average.
    assert!(
        mean(&os_examples) < 0.9 * mean(&truth_examples),
        "over-selection mean {} vs ground truth {}",
        mean(&os_examples),
        mean(&truth_examples)
    );
    // AsyncFL stays close to the ground-truth distribution.
    let async_gap = (mean(&async_examples) - mean(&truth_examples)).abs() / mean(&truth_examples);
    assert!(async_gap < 0.15, "async mean deviates by {async_gap:.2}");

    // KS statistics: async is much closer to the ground truth than sync w/ OS.
    let ks_async = async_fl.metrics.ks_against(&truth_examples);
    let ks_os = sync_os.metrics.ks_against(&truth_examples);
    assert!(
        ks_async.d_statistic < ks_os.d_statistic,
        "KS D async {} should be below sync-with-OS {}",
        ks_async.d_statistic,
        ks_os.d_statistic
    );

    // The execution times of clients aggregated under over-selection are
    // shorter (the stragglers were discarded).
    let truth_times = ground_truth.metrics.aggregated_execution_times();
    let os_times = sync_os.metrics.aggregated_execution_times();
    assert!(mean(&os_times) < mean(&truth_times));
}
