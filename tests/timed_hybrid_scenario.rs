//! Cross-crate integration test for the third pluggable aggregation
//! strategy: the timed hybrid (FedBuff-style buffer with a sync-style round
//! deadline) runs end to end through the unified `Scenario` API, in both
//! the direct and the control-plane fleet paths — without the runtime ever
//! branching on a training mode.

use papaya_core::TaskConfig;
use papaya_sim::scenario::{EvalPolicy, FleetSpec, RunLimits, Scenario, StopReason};

/// A straggler regime where pure FedBuff stalls: the aggregation goal is far
/// above what the concurrency can deliver, so only the deadline can release
/// buffers.  The hybrid keeps the server stepping; count-only FedBuff never
/// steps once.
#[test]
fn deadline_releases_rescue_an_unreachable_goal() {
    let run = |task: TaskConfig| {
        Scenario::builder()
            .population(papaya_data::population::Population::generate(
                &papaya_data::population::PopulationConfig::default().with_size(500),
                19,
            ))
            .task(task)
            .limits(RunLimits::default().with_max_virtual_time_hours(2.0))
            .eval(EvalPolicy::default().with_interval_s(600.0))
            .seed(19)
            .build()
            .run()
    };

    let fedbuff = run(TaskConfig::async_task("stalled", 24, 10_000));
    assert_eq!(
        fedbuff.tasks[0].server_updates(),
        0,
        "count-only FedBuff should stall with an unreachable goal"
    );

    let hybrid = run(TaskConfig::timed_hybrid_task("rescued", 24, 10_000, 300.0));
    let task = &hybrid.tasks[0];
    assert!(
        task.server_updates() > 5,
        "deadline releases missing: {} server updates",
        task.server_updates()
    );
    assert!(
        task.final_loss < task.initial_loss,
        "hybrid did not train: {} -> {}",
        task.initial_loss,
        task.final_loss
    );
    // Deadline releases never close a round: no round-end aborts, no
    // over-selection discards.
    assert_eq!(task.metrics.aborted_by_round_end, 0);
    assert_eq!(task.metrics.discarded_updates, 0);
    assert_eq!(hybrid.stop_reason, StopReason::MaxVirtualTime);
}

/// With a reachable goal and a generous deadline, the hybrid behaves like
/// FedBuff (count releases fire first) and converges comparably.
#[test]
fn hybrid_matches_fedbuff_when_the_goal_is_reachable() {
    let population = |seed| {
        papaya_data::population::Population::generate(
            &papaya_data::population::PopulationConfig::default().with_size(800),
            seed,
        )
    };
    let run = |task: TaskConfig| {
        Scenario::builder()
            .population(population(23))
            .task(task)
            .limits(RunLimits::default().with_max_virtual_time_hours(2.0))
            .eval(EvalPolicy::default().with_interval_s(600.0))
            .seed(23)
            .build()
            .run()
            .into_single()
    };
    let fedbuff = run(TaskConfig::async_task("fedbuff", 64, 16));
    // A deadline far above the natural buffer-fill time never fires.
    let hybrid = run(TaskConfig::timed_hybrid_task("hybrid", 64, 16, 1e6));
    assert_eq!(fedbuff.server_updates(), hybrid.server_updates());
    assert_eq!(fedbuff.comm_trips(), hybrid.comm_trips());
    assert_eq!(fedbuff.final_loss, hybrid.final_loss);
}

/// The hybrid strategy also works behind the control plane, surviving an
/// Aggregator crash (its open buffer dies with the process, the deadline
/// window restarts after reassignment, and training resumes).
#[test]
fn hybrid_task_survives_failover_in_a_fleet() {
    let report = Scenario::builder()
        .population(papaya_data::population::Population::generate(
            &papaya_data::population::PopulationConfig::default().with_size(1500),
            29,
        ))
        .task(TaskConfig::async_task("kbd", 48, 12))
        .task(TaskConfig::timed_hybrid_task("hybrid", 24, 5_000, 240.0))
        .fleet(FleetSpec::new(2, 2))
        .limits(RunLimits::default().with_max_virtual_time_hours(2.0))
        .eval(EvalPolicy::default().with_interval_s(300.0))
        .crash_at(1800.0, 0)
        .seed(29)
        .build()
        .run();
    assert_eq!(report.fleet.control_plane.aggregator_failures, 1);
    let hybrid = &report.tasks[1];
    assert!(
        hybrid.server_updates() > 3,
        "hybrid produced {} server updates",
        hybrid.server_updates()
    );
    assert!(hybrid.final_loss < hybrid.initial_loss);
    for task in &report.tasks {
        assert!(
            task.final_loss < task.initial_loss,
            "task {} did not improve after failover",
            task.name
        );
    }
}
