//! Scale-out suite: the million-client path's three load-bearing claims.
//!
//! `docs/SCALING.md` rests on three properties, each pinned here from
//! outside the implementing crates:
//!
//! 1. **Sharding is invisible.**  The sharded sampling pool draws the
//!    *bit-identical* client sequence at every shard capacity — including
//!    the degenerate capacity that reproduces the historical flat pool —
//!    so selection (and therefore every fingerprint) is independent of the
//!    memory layout.  Checked both directly (property test over random
//!    acquire/release interleavings) and end-to-end (scenario fingerprints
//!    across shard capacities).
//! 2. **Decimation is deterministic and honest.**  At a fixed
//!    `RunLimits::trace_budget` the fingerprint is invariant across thread
//!    counts and shard capacities, the retained traces actually respect
//!    the budget, and changing the budget *changes* the fingerprint (the
//!    decimation parameters are hashed in — a truncated trace can never
//!    impersonate a full one).
//! 3. **Idle clients are O(bytes).**  The combined per-idle-device state
//!    across the packed population and the sampling pool is a documented
//!    constant number of bytes, asserted at compile time.

use papaya_core::TaskConfig;
use papaya_data::population::{Population, PopulationConfig};
use papaya_sim::sampling::ShardedSamplingPool;
use papaya_sim::scenario::{EvalPolicy, Report, RunLimits, Scenario};
use papaya_sim::Parallelism;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

// Claim 3, at compile time: a packed population record (speed + example
// count) plus a pool slot (free-list entry + slot index) per idle device.
// 24 bytes of headroom documented in docs/SCALING.md; a struct growing
// past it fails this build, not a profiling session six months later.
const IDLE_BYTES_PER_DEVICE: usize =
    Population::BYTES_PER_DEVICE + ShardedSamplingPool::BYTES_PER_DEVICE;
const _: () = assert!(
    IDLE_BYTES_PER_DEVICE <= 24,
    "idle per-device state outgrew the documented 24-byte budget"
);

fn population(n: usize) -> Population {
    Population::generate(
        &PopulationConfig::default().with_size(n).with_dropout(0.1),
        23,
    )
}

fn scenario(limits: RunLimits, parallelism: Parallelism) -> Report {
    Scenario::builder()
        .population(population(900))
        .task(TaskConfig::async_task("scale-out", 64, 16))
        .limits(
            limits
                .with_max_virtual_time_hours(2.0)
                .with_parallelism(parallelism),
        )
        .eval(EvalPolicy::default().with_interval_s(600.0))
        .seed(47)
        .build()
        .run()
}

proptest! {
    /// Claim 1, directly on the pool: any interleaving of draws and
    /// releases produces the same id sequence at every shard capacity,
    /// because the sharded free list reproduces the flat `swap_remove`
    /// semantics exactly.  (`capacity >= n` IS the flat pool, so this also
    /// proves draws are distributionally unchanged from the historical
    /// implementation.)
    #[test]
    fn shard_draws_match_flat_draws(
        n in 1usize..300,
        capacity in 1usize..64,
        seed in 0u64..1_000,
    ) {
        let mut flat = ShardedSamplingPool::with_shard_capacity(n, n.max(1));
        let mut sharded = ShardedSamplingPool::with_shard_capacity(n, capacity);
        let mut rng_flat = StdRng::seed_from_u64(seed);
        let mut rng_sharded = StdRng::seed_from_u64(seed);
        let mut acquired: Vec<usize> = Vec::new();
        let mut step_rng = StdRng::seed_from_u64(seed ^ 0xdead_beef);
        for step in 0..400usize {
            // Release roughly a third of the time, favoring drain-refill
            // cycles that cross shard boundaries.
            let release = !acquired.is_empty() && step % 3 == 0;
            if release {
                let idx = rand::Rng::gen_range(&mut step_rng, 0..acquired.len());
                let id = acquired.swap_remove(idx);
                flat.release(id);
                sharded.release(id);
            } else {
                let a = flat.acquire_random(&mut rng_flat);
                let b = sharded.acquire_random(&mut rng_sharded);
                prop_assert_eq!(a, b, "diverged at step {}", step);
                if let Some(id) = a {
                    acquired.push(id);
                }
            }
        }
    }
}

/// Claim 1, end to end: the full scenario fingerprint is invariant across
/// shard capacities, including one small enough that the free list spans
/// hundreds of shards.
#[test]
fn fingerprints_are_invariant_across_shard_capacities() {
    let reference = scenario(RunLimits::default(), Parallelism::sequential()).fingerprint();
    for capacity in [1, 7, 128, 1 << 16] {
        let report = scenario(
            RunLimits::default().with_sampling_shard_capacity(capacity),
            Parallelism::sequential(),
        );
        assert_eq!(
            reference,
            report.fingerprint(),
            "fingerprint moved at shard capacity {capacity}"
        );
    }
}

/// Claim 2: at a fixed bounded budget the fingerprint is invariant across
/// thread counts and shard capacities — decimation is part of the
/// deterministic contract, not a lossy afterthought.
#[test]
fn budgeted_fingerprints_are_invariant_across_threads_and_shards() {
    let budget = 64;
    let reference = scenario(
        RunLimits::default().with_trace_budget(budget),
        Parallelism::sequential(),
    )
    .fingerprint();
    for parallelism in [Parallelism(1), Parallelism(4)] {
        let report = scenario(RunLimits::default().with_trace_budget(budget), parallelism);
        assert_eq!(
            reference,
            report.fingerprint(),
            "budgeted fingerprint diverged at {parallelism:?}"
        );
    }
    let resharded = scenario(
        RunLimits::default()
            .with_trace_budget(budget)
            .with_sampling_shard_capacity(5),
        Parallelism::sequential(),
    );
    assert_eq!(reference, resharded.fingerprint());
}

/// Claim 2: the budget actually bounds the retained traces while the
/// counters (which are exact, never decimated) still see every event, and
/// a different budget yields a different fingerprint.
#[test]
fn decimation_bounds_traces_and_is_fingerprint_visible() {
    let budget = 32;
    let bounded = scenario(
        RunLimits::default().with_trace_budget(budget),
        Parallelism::sequential(),
    );
    let unbounded = scenario(RunLimits::default(), Parallelism::sequential());

    let m = &bounded.single().metrics;
    let full = &unbounded.single().metrics;
    assert!(
        full.participations.len() > budget,
        "scenario too small to exercise decimation ({} participations)",
        full.participations.len()
    );
    assert!(m.participations.len() <= budget);
    assert!(m.loss_curve.len() <= budget);
    assert!(m.utilization_trace.len() <= budget);
    // Decimation drops trace samples, never counter increments.
    assert_eq!(m.comm_trips, full.comm_trips);
    assert_eq!(m.aggregated_updates, full.aggregated_updates);
    assert_eq!(bounded.events_processed, unbounded.events_processed);

    // The budget is hashed: three distinct retention policies, three
    // distinct fingerprints.
    let wider = scenario(
        RunLimits::default().with_trace_budget(budget * 2),
        Parallelism::sequential(),
    );
    assert_ne!(bounded.fingerprint(), unbounded.fingerprint());
    assert_ne!(bounded.fingerprint(), wider.fingerprint());
}

/// Claim 3, at run time: the documented record sizes are what the packed
/// containers actually store, and the materialized [`DeviceProfile`] they
/// replace is several times larger — i.e. the profile really is re-derived
/// on demand, not cached per device.
#[test]
fn idle_state_measures_within_the_documented_budget() {
    let n = 10_000;
    let pop = population(n);
    let pool = ShardedSamplingPool::new(n);
    assert_eq!(pop.len(), n);
    assert_eq!(pool.available(), n);
    // f64 speed + u32 examples; u32 free-list entry + u32 slot index.
    assert_eq!(Population::BYTES_PER_DEVICE, 12);
    assert_eq!(ShardedSamplingPool::BYTES_PER_DEVICE, 8);
    assert!(std::mem::size_of_val(&pop.device(0)) > Population::BYTES_PER_DEVICE);
}
