//! Cross-crate integration test: the full asynchronous training pipeline
//! (population → surrogate objective → discrete-event simulation) reproduces
//! the paper's qualitative claims at a small scale.

use papaya_core::client::ClientTrainer;
use papaya_core::surrogate::{SurrogateConfig, SurrogateObjective};
use papaya_core::TaskConfig;
use papaya_data::population::{Population, PopulationConfig};
use papaya_sim::scenario::{EvalPolicy, RunLimits, Scenario, TaskReport};
use std::sync::Arc;

fn setup(seed: u64) -> (Population, Arc<SurrogateObjective>) {
    let population = Population::generate(&PopulationConfig::default().with_size(1_500), seed);
    let trainer = Arc::new(SurrogateObjective::new(
        &population,
        SurrogateConfig::default(),
        seed,
    ));
    (population, trainer)
}

fn run(
    task: TaskConfig,
    population: &Population,
    trainer: &Arc<SurrogateObjective>,
    target: Option<f64>,
    hours: f64,
) -> TaskReport {
    // Evaluate often: time-to-target (and the communication spent getting
    // there) is quantized by the evaluation interval, so a coarse interval
    // drowns the sync/async comparison in measurement noise.
    let mut limits = RunLimits::default().with_max_virtual_time_hours(hours);
    if let Some(t) = target {
        limits = limits.with_target_loss(t);
    }
    Scenario::builder()
        .population(population.clone())
        .task_with_trainer(task, trainer.clone())
        .limits(limits)
        .eval(EvalPolicy::default().with_interval_s(10.0))
        .seed(11)
        .build()
        .run()
        .into_single()
}

#[test]
fn async_reaches_target_faster_and_cheaper_than_sync() {
    let (population, trainer) = setup(11);
    let all: Vec<usize> = (0..trainer.num_clients()).collect();
    let initial = trainer.evaluate(&trainer.initial_parameters(), &all);
    let floor = trainer.evaluate(&trainer.population_optimum(), &all);
    let target = floor + 0.1 * (initial - floor);

    let sync = run(
        TaskConfig::sync_task("sync", 130, 0.3),
        &population,
        &trainer,
        Some(target),
        120.0,
    );
    let async_fl = run(
        TaskConfig::async_task("async", 130, 32),
        &population,
        &trainer,
        Some(target),
        120.0,
    );

    let sync_hours = sync.hours_to_target.expect("sync should reach target");
    let async_hours = async_fl.hours_to_target.expect("async should reach target");
    // SyncFL pays at least one straggler-gated round (~minutes); AsyncFL's
    // first buffers complete within seconds, so it reaches the target in
    // strictly less virtual time.
    assert!(
        async_hours < sync_hours,
        "async ({async_hours:.3} h) should beat sync ({sync_hours:.3} h)"
    );
    assert!(
        async_fl.comm_trips() < sync.comm_trips(),
        "async should use fewer communication trips ({} vs {})",
        async_fl.comm_trips(),
        sync.comm_trips()
    );
}

#[test]
fn async_produces_many_more_server_updates_per_hour() {
    let (population, trainer) = setup(13);
    let sync = run(
        TaskConfig::sync_task("sync", 130, 0.3),
        &population,
        &trainer,
        None,
        3.0,
    );
    let async_fl = run(
        TaskConfig::async_task("async", 130, 16),
        &population,
        &trainer,
        None,
        3.0,
    );
    // Figure 8: the async configuration takes far more server steps per hour.
    assert!(
        async_fl.summary.server_updates_per_hour > 5.0 * sync.summary.server_updates_per_hour,
        "async {} vs sync {}",
        async_fl.summary.server_updates_per_hour,
        sync.summary.server_updates_per_hour
    );
}

#[test]
fn async_utilization_stays_near_the_concurrency_target() {
    let (population, trainer) = setup(17);
    let async_fl = run(
        TaskConfig::async_task("async", 100, 25),
        &population,
        &trainer,
        None,
        2.0,
    );
    // Figure 7: utilization is close to 100 % of the concurrency target.
    assert!(
        async_fl.summary.mean_active_clients > 85.0,
        "mean active {}",
        async_fl.summary.mean_active_clients
    );
    let sync = run(
        TaskConfig::sync_task("sync", 100, 0.0),
        &population,
        &trainer,
        None,
        2.0,
    );
    assert!(sync.summary.mean_active_clients < async_fl.summary.mean_active_clients);
}

#[test]
fn staleness_grows_with_concurrency_over_aggregation_goal_ratio() {
    let (population, trainer) = setup(19);
    let low_ratio = run(
        TaskConfig::async_task("low", 64, 64),
        &population,
        &trainer,
        None,
        2.0,
    );
    let high_ratio = run(
        TaskConfig::async_task("high", 256, 16),
        &population,
        &trainer,
        None,
        2.0,
    );
    assert!(
        high_ratio.summary.mean_staleness > low_ratio.summary.mean_staleness,
        "staleness {} vs {}",
        high_ratio.summary.mean_staleness,
        low_ratio.summary.mean_staleness
    );
}
