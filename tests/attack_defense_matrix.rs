//! The attack-vs-defense scenario matrix.
//!
//! Every typed malicious behavior is run three ways against the same
//! composition and seed:
//!
//! 1. **clean** — honest population, no defense: the convergence baseline;
//! 2. **attacked** — the Byzantine cohort on, no defense: the attack must
//!    visibly degrade convergence (otherwise it is not worth defending
//!    against);
//! 3. **defended** — the same cohort against its matched defense: the
//!    defense must restore convergence to near the clean baseline.
//!
//! The pairings follow each defense's strength: the norm filter catches
//! magnitude attacks, the coordinate median survives minority sign flips
//! and garbage releases, and the trimmed mean discards colluding and
//! metadata-lying tails.  A final case pins the identity contract: neutral
//! defenses over an honest population are bit-identical to running clear.

use papaya_core::config::SecAggMode;
use papaya_core::{AdversarySpec, DeviationKind, Malice, RobustConfig, RobustDefense, TaskConfig};
use papaya_data::population::{Population, PopulationConfig};
use papaya_sim::scenario::{EvalPolicy, Report, RunLimits, Scenario};

fn population(n: usize) -> Population {
    Population::generate(&PopulationConfig::default().with_size(n), 29)
}

/// Runs one cell of the matrix: a FedBuff task (optionally secure, for the
/// SecAgg-deviation rows) with the given adversary and defense.
fn run(
    secagg: SecAggMode,
    adversary: Option<AdversarySpec>,
    robust: Option<RobustConfig>,
) -> Report {
    // Buffer of 12: large enough that the Bernoulli-sampled malicious
    // cohort stays a per-buffer minority, which is the regime the
    // estimator defenses are designed for.
    let mut task = TaskConfig::async_task("matrix", 24, 12).with_secagg(secagg);
    if let Some(spec) = adversary {
        task = task.with_adversary(spec);
    }
    if let Some(config) = robust {
        task = task.with_robust(config);
    }
    Scenario::builder()
        .population(population(400))
        .task(task)
        .limits(RunLimits::default().with_max_virtual_time_hours(0.5))
        .eval(EvalPolicy::default().with_interval_s(600.0))
        .seed(41)
        .build()
        .run()
}

/// Asserts one attack row: the attack degrades the undefended run and the
/// matched defense restores convergence.
///
/// "Degrades" means the attacked final loss is non-finite or worse than the
/// clean baseline by more than `degrade_factor`; "restores" means the
/// defended final loss lands within `restore_factor` of clean — both
/// factors chosen per attack strength, well clear of run-to-run noise.
fn assert_row(
    label: &str,
    secagg: SecAggMode,
    adversary: AdversarySpec,
    defense: RobustConfig,
    degrade_factor: f64,
    restore_factor: f64,
) {
    let clean = run(secagg, None, None);
    let attacked = run(secagg, Some(adversary), None);
    let defended = run(secagg, Some(adversary), Some(defense));

    let clean_loss = clean.single().final_loss;
    let attacked_loss = attacked.single().final_loss;
    let defended_loss = defended.single().final_loss;
    eprintln!(
        "{label}: clean={clean_loss:.6} attacked={attacked_loss:.6} defended={defended_loss:.6}"
    );

    assert!(
        attacked.single().metrics.attacked_updates > 0,
        "{label}: the adversary never fired"
    );
    assert!(
        !attacked_loss.is_finite() || attacked_loss > clean_loss * degrade_factor,
        "{label}: undefended attack did not degrade convergence \
         (clean {clean_loss}, attacked {attacked_loss})"
    );
    assert!(
        defended_loss.is_finite() && defended_loss <= clean_loss * restore_factor,
        "{label}: defense failed to restore convergence \
         (clean {clean_loss}, defended {defended_loss})"
    );
    assert!(
        !attacked_loss.is_finite() || defended_loss < attacked_loss,
        "{label}: defended run is no better than the undefended one"
    );
}

#[test]
fn norm_filter_stops_scaled_updates() {
    assert_row(
        "scaled x100 vs norm filter",
        SecAggMode::Disabled,
        AdversarySpec::new(0.3, Malice::Scaled { factor: 100.0 }),
        RobustConfig::new(RobustDefense::NormFilter { max_norm: 5.0 }),
        2.0,
        2.0,
    );
}

#[test]
fn coordinate_median_survives_sign_flips() {
    assert_row(
        "sign-flip vs coordinate median",
        SecAggMode::Disabled,
        AdversarySpec::new(0.2, Malice::SignFlip { scale: 5.0 }),
        RobustConfig::new(RobustDefense::CoordinateMedian),
        2.0,
        2.0,
    );
}

#[test]
fn trimmed_mean_discards_a_colluding_cohort() {
    assert_row(
        "collusion vs trimmed mean",
        SecAggMode::Disabled,
        AdversarySpec::new(0.2, Malice::Collusion { magnitude: 25.0 }),
        RobustConfig::new(RobustDefense::TrimmedMean { trim_fraction: 0.4 }),
        2.0,
        3.0,
    );
}

#[test]
fn trimmed_mean_blunts_staleness_liars() {
    assert_row(
        "staleness liar vs trimmed mean",
        SecAggMode::Disabled,
        AdversarySpec::new(0.4, Malice::StalenessLiar),
        RobustConfig::new(RobustDefense::TrimmedMean { trim_fraction: 0.4 }),
        1.5,
        5.0,
    );
}

#[test]
fn trimmed_mean_replaces_wrong_counter_garbage() {
    assert_row(
        "secagg wrong-counter vs trimmed mean",
        SecAggMode::AsyncSecAgg,
        AdversarySpec::new(
            0.3,
            Malice::SecAggDeviation {
                kind: DeviationKind::WrongCounter,
            },
        ),
        RobustConfig::new(RobustDefense::TrimmedMean {
            trim_fraction: 0.35,
        }),
        2.0,
        2.0,
    );
}

#[test]
fn coordinate_median_replaces_garbage_mask_releases() {
    assert_row(
        "secagg garbage-mask vs coordinate median",
        SecAggMode::AsyncSecAgg,
        AdversarySpec::new(
            0.3,
            Malice::SecAggDeviation {
                kind: DeviationKind::GarbageMask,
            },
        ),
        RobustConfig::new(RobustDefense::CoordinateMedian),
        2.0,
        2.0,
    );
}

#[test]
fn neutral_defenses_over_an_honest_population_run_bit_identical_to_clear() {
    // Both neutral settings — the infinite norm filter and the zero-trim
    // trimmed mean — are pure pass-throughs: same model bits, same event
    // stream, same fingerprint as the clear run.
    let clear = run(SecAggMode::Disabled, None, None);
    for neutral in [
        RobustConfig::neutral(),
        RobustConfig::new(RobustDefense::TrimmedMean { trim_fraction: 0.0 }),
    ] {
        let defended = run(SecAggMode::Disabled, None, Some(neutral));
        assert_eq!(
            clear.fingerprint(),
            defended.fingerprint(),
            "{neutral:?} was not a pure pass-through"
        );
    }
}

#[test]
fn every_attack_leaves_a_labeled_ground_truth_trail() {
    // The ground-truth attack telemetry is what the matrix above trusts;
    // pin that each behavior label lands in the metrics exactly once per
    // corrupted upload.
    let spec = AdversarySpec::new(0.3, Malice::SignFlip { scale: 2.0 });
    let report = run(SecAggMode::Disabled, Some(spec), None);
    let m = &report.single().metrics;
    assert!(m.attacked_updates > 0);
    assert_eq!(m.attacks_by_label.len(), 1);
    assert_eq!(
        m.attacks_by_label.get("sign-flip"),
        Some(&m.attacked_updates)
    );
    assert_eq!(m.attack_trace.len() as u64, m.attacked_updates);
}
