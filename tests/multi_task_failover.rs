//! Cross-layer integration test: a mid-run Aggregator crash in a
//! multi-tenant fleet exercises the whole failure-handling path —
//! Coordinator heartbeat detection, task reassignment (map sequence bump),
//! stale Selectors refusing to route until refreshed, buffered updates lost
//! with the dead Aggregator, and every surviving task still converging.

use papaya_core::TaskConfig;
use papaya_data::population::{Population, PopulationConfig};
use papaya_sim::cluster::{Coordinator, Selector, TaskSpec};
use papaya_sim::scenario::{EvalPolicy, FleetSpec, Report, RunLimits, Scenario};

fn failover_run(seed: u64) -> Report {
    let population = Population::generate(&PopulationConfig::default().with_size(2000), seed);
    Scenario::builder()
        .population(population)
        .task(TaskConfig::async_task("keyboard-lm", 64, 16))
        .task(TaskConfig::async_task("speech-kws", 32, 8).with_min_capability_tier(1))
        .task(TaskConfig::sync_task("photo-ranker", 40, 0.3))
        .task(TaskConfig::async_task("smart-reply", 24, 8))
        .fleet(FleetSpec::new(2, 3))
        .limits(RunLimits::default().with_max_virtual_time_hours(2.0))
        .eval(EvalPolicy::default().with_interval_s(300.0))
        // Aggregator 0 dies mid-run, while every task is training.
        .crash_at(1800.0, 0)
        .seed(seed)
        .build()
        .run()
}

#[test]
fn aggregator_crash_reassigns_tasks_and_training_resumes() {
    let result = failover_run(42);
    let cp = &result.fleet.control_plane;

    // The Coordinator noticed exactly one dead Aggregator and moved its
    // tasks; with 2 Aggregators and 4 tasks, some were assigned to the dead
    // one at submission time.
    assert_eq!(cp.aggregator_failures, 1);
    assert!(cp.task_reassignments > 0, "no task was reassigned");

    // Reassignment bumps the assignment-map sequence past the 4 submits.
    assert!(
        cp.final_map_sequence > 4,
        "sequence {} should exceed the submission bumps",
        cp.final_map_sequence
    );

    // Between the reassignment and their next periodic refresh, stale
    // Selectors refused to route check-ins.
    assert!(
        cp.stale_route_refusals > 0,
        "stale selectors never refused a route"
    );

    // Uploads addressed to the dead Aggregator were lost in transit, and
    // the orphaned tasks' buffered updates died with the process.
    assert!(cp.lost_in_transit_updates > 0);
    let reassigned: Vec<_> = result
        .tasks
        .iter()
        .filter(|t| t.reassignments > 0)
        .collect();
    assert!(!reassigned.is_empty());

    // Every task — including the reassigned ones — ends with a lower loss
    // than it started with: training resumed after failover.
    for task in &result.tasks {
        assert!(
            task.comm_trips() > 0,
            "task {} received no client updates",
            task.name
        );
        assert!(
            task.final_loss < task.initial_loss,
            "task {} did not improve: {} -> {}",
            task.name,
            task.initial_loss,
            task.final_loss
        );
    }

    // Per-task and fleet-level metrics agree.
    assert_eq!(result.tasks.len(), 4);
    assert_eq!(
        result.fleet.total_comm_trips,
        result.tasks.iter().map(|t| t.comm_trips()).sum::<u64>()
    );
    assert!(result.fleet.mean_active_clients > 0.0);
}

#[test]
fn failover_runs_are_deterministic() {
    let a = failover_run(42);
    let b = failover_run(42);
    assert_eq!(a.fleet.control_plane, b.fleet.control_plane);
    assert_eq!(a.fleet.total_comm_trips, b.fleet.total_comm_trips);
    for (x, y) in a.tasks.iter().zip(&b.tasks) {
        assert_eq!(x.final_loss, y.final_loss);
        assert_eq!(x.reassignments, y.reassignments);
    }
    assert_eq!(a.stop_reason, b.stop_reason);
}

fn total_loss_run(seed: u64) -> Report {
    let population = Population::generate(&PopulationConfig::default().with_size(2000), seed);
    Scenario::builder()
        .population(population)
        .task(TaskConfig::async_task("keyboard-lm", 64, 16))
        .task(TaskConfig::async_task("speech-kws", 32, 8).with_min_capability_tier(1))
        .task(TaskConfig::sync_task("photo-ranker", 40, 0.3))
        .task(TaskConfig::async_task("smart-reply", 24, 8))
        .fleet(FleetSpec::new(2, 3))
        .limits(RunLimits::default().with_max_virtual_time_hours(2.0))
        .eval(EvalPolicy::default().with_interval_s(300.0))
        // The whole Aggregator fleet dies mid-run...
        .crash_at(1800.0, 0)
        .crash_at(2400.0, 1)
        // ...and one process comes back half an hour later.
        .recover_at(3600.0, 0)
        .seed(seed)
        .build()
        .run()
}

/// Regression test for the orphan-routing bug: after *total* Aggregator
/// loss, tasks used to keep routes to the dead process forever — the
/// failure sweep never bumped the map sequence, so the first recovery
/// heartbeat re-placed nothing and Selectors routed to a corpse for the
/// rest of the run.  With the reconciled control plane, the recovery
/// heartbeat triggers a reconcile pass that re-places every orphan.
#[test]
fn total_loss_orphans_recover_after_one_heartbeat() {
    let result = total_loss_run(42);
    let cp = &result.fleet.control_plane;

    assert_eq!(cp.aggregator_failures, 2, "both aggregators died");
    assert_eq!(cp.aggregator_recoveries, 1, "one came back");

    // The second crash orphaned every task (agg 0's tasks had already been
    // reassigned to agg 1, so all four rode the corpse), and the reconcile
    // pass triggered by the recovery heartbeat re-placed each exactly once.
    assert_eq!(cp.tasks_orphaned, 4, "total loss orphans every task");
    assert_eq!(
        cp.tasks_reconciled, cp.tasks_orphaned,
        "every orphan re-placed exactly once, within one reconcile pass"
    );

    // Orphan re-placements count as reassignments: the partial-failure
    // sweep moved some tasks, the reconcile pass moved all four again.
    assert!(
        cp.task_reassignments > 4,
        "expected partial-failure moves plus 4 orphan re-placements, got {}",
        cp.task_reassignments
    );

    // The reconcile pass bumped the map sequence (4 submissions + at least
    // one failure sweep + the reconcile bump), so stale Selectors noticed.
    assert!(
        cp.final_map_sequence > 5,
        "sequence {} should reflect the reconcile bump",
        cp.final_map_sequence
    );
    assert!(cp.stale_route_refusals > 0);

    // Training resumed after the fleet came back: every task improved and
    // kept receiving client updates.
    for task in &result.tasks {
        assert!(task.comm_trips() > 0, "task {} starved", task.name);
        assert!(
            task.final_loss < task.initial_loss,
            "task {} did not improve: {} -> {}",
            task.name,
            task.initial_loss,
            task.final_loss
        );
    }
}

#[test]
fn total_loss_runs_are_deterministic() {
    let a = total_loss_run(42);
    let b = total_loss_run(42);
    assert_eq!(a.fingerprint(), b.fingerprint());
}

#[test]
fn stale_selector_refuses_until_refreshed_after_failover() {
    // The control-plane primitive underneath the simulation, end to end:
    // place tasks on two Aggregators, kill one, and watch a Selector's
    // cached map go stale and recover.
    let mut coordinator = Coordinator::new(30.0, 7);
    coordinator.register_aggregator(0, 0.0);
    coordinator.register_aggregator(1, 0.0);
    let spec = |id: usize, name: &str| {
        TaskSpec::from_task_config(id, &TaskConfig::async_task(name, 100, 10))
    };
    let placed_a = coordinator
        .submit_task(spec(0, "a"))
        .aggregator()
        .expect("an aggregator is alive");
    let placed_b = coordinator
        .submit_task(spec(1, "b"))
        .aggregator()
        .expect("an aggregator is alive");
    assert_ne!(placed_a, placed_b, "workload balancing spreads the tasks");

    let mut selector = Selector::new();
    selector.refresh(&coordinator);
    let sequence_before = coordinator.sequence();
    assert!(!selector.is_stale(&coordinator));

    // Aggregator holding task 0 goes silent; the other keeps heartbeating.
    coordinator.heartbeat(placed_b, 100.0);
    let sweep = coordinator.detect_failures(100.0);
    assert_eq!(sweep.reassigned, vec![0]);
    assert!(sweep.orphaned.is_empty(), "a survivor exists: no orphans");
    assert!(coordinator.sequence() > sequence_before);

    // The Selector is stale until it refreshes, then routes to the survivor.
    assert!(selector.is_stale(&coordinator));
    selector.refresh(&coordinator);
    assert!(!selector.is_stale(&coordinator));
    assert_eq!(
        selector.route(0),
        papaya_sim::cluster::RouteOutcome::Routed(placed_b)
    );
}
