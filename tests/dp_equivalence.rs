//! The DP-vs-clear equivalence suite: the proof that the differential
//! privacy layer is wired through the whole Scenario pipeline without
//! changing anything it is not supposed to change.
//!
//! For each aggregation strategy, the *identical* scenario is run twice —
//! once in the clear and once with a **noiseless** DP configuration
//! (`noise_multiplier = 0`, unreachable clip bound) — and the two runs must
//! agree on every protocol counter and on the final parameters **bit for
//! bit**: a no-op DP layer must be a true no-op (clipping is skipped inside
//! the bound, the noise step is skipped at zero, and no RNG stream is
//! perturbed).  A second battery then turns the noise on and pins the
//! privacy-utility direction: eval loss degrades monotonically with the
//! noise multiplier while the accountant's ε is monotone in releases, and
//! the DP layer stacks over secure aggregation without disturbing the
//! secure run's counters or parameters.

use papaya_core::config::SecAggMode;
use papaya_core::{DpConfig, TaskConfig};
use papaya_data::population::{Population, PopulationConfig};
use papaya_sim::scenario::{EvalPolicy, Report, RunLimits, Scenario};
use papaya_sim::Parallelism;

fn population(n: usize) -> Population {
    Population::generate(
        &PopulationConfig::default().with_size(n).with_dropout(0.05),
        47,
    )
}

fn run(task: TaskConfig, hours: f64, parallelism: Parallelism) -> Report {
    Scenario::builder()
        .population(population(600))
        .task(task)
        .limits(RunLimits::default().with_max_virtual_time_hours(hours))
        .eval(EvalPolicy::default().with_interval_s(600.0))
        .parallelism(parallelism)
        .seed(53)
        .build()
        .run()
}

/// A DP configuration that must change nothing: zero noise and a clip
/// bound no surrogate delta can reach.
fn noop_dp() -> DpConfig {
    DpConfig::new(1e9, 0.0)
}

/// Runs `task` in the clear and with noiseless DP and asserts the
/// equivalence contract.  Returns `(clear, dp)` for extra per-strategy
/// assertions.
fn assert_noiseless_dp_matches_clear(task: TaskConfig, hours: f64) -> (Report, Report) {
    let clear = run(task.clone(), hours, Parallelism::sequential());
    let private = run(task.with_dp(noop_dp()), hours, Parallelism::sequential());
    let (c, p) = (&clear.single().metrics, &private.single().metrics);

    // Identical trajectory: the no-op DP layer must not change a single
    // policy decision or counter.
    assert_eq!(c.comm_trips, p.comm_trips);
    assert_eq!(c.server_updates, p.server_updates);
    assert_eq!(c.aggregated_updates, p.aggregated_updates);
    assert_eq!(c.rejected_stale_updates, p.rejected_stale_updates);
    assert_eq!(c.discarded_updates, p.discarded_updates);
    assert_eq!(c.failed_participations, p.failed_participations);
    assert_eq!(c.aborted_by_round_end, p.aborted_by_round_end);
    assert_eq!(c.staleness_sum, p.staleness_sum);
    assert_eq!(c.participations, p.participations);
    assert_eq!(c.loss_curve, p.loss_curve, "evaluations diverged");
    assert!(p.server_updates > 0, "nothing was aggregated");

    // Bit-exact parameters: zero noise is skipped, not "added as 0.0", and
    // an unreachable clip bound never rescales.
    assert_eq!(
        clear.single().final_params,
        private.single().final_params,
        "noiseless DP must be bit-exact against the clear run"
    );
    assert_eq!(clear.single().final_loss, private.single().final_loss);

    // DP bookkeeping engaged all the same: every server update was an
    // accounted release, nothing was clipped, and ε is infinite (zero
    // noise) — present in the report and hashed into the fingerprint.
    assert_eq!(p.dp.releases, p.server_updates);
    assert_eq!(p.dp.accepted_updates, p.aggregated_updates);
    assert_eq!(p.dp.clipped_updates, 0, "the unreachable bound clipped");
    assert_eq!(p.dp.release_trace.len(), p.server_updates as usize);
    assert!(p.dp.release_trace.iter().all(|r| r.noise_std == 0.0));
    assert_eq!(p.dp.cumulative_epsilon, f64::INFINITY);
    assert_eq!(c.dp.releases, 0, "clear run ran the DP pipeline");
    assert_ne!(
        clear.fingerprint(),
        private.fingerprint(),
        "the DP telemetry must be part of the fingerprint"
    );
    (clear, private)
}

#[test]
fn fedbuff_noiseless_dp_matches_clear() {
    let (_, private) =
        assert_noiseless_dp_matches_clear(TaskConfig::async_task("fedbuff", 32, 8), 1.0);
    assert!(private.single().server_updates() > 10);
}

#[test]
fn sync_round_noiseless_dp_matches_clear() {
    let (_, private) =
        assert_noiseless_dp_matches_clear(TaskConfig::sync_task("sync", 30, 0.3), 2.0);
    let m = &private.single().metrics;
    // Over-selection waste ran under the DP layer unchanged.
    assert!(m.aborted_by_round_end > 0, "no over-selection waste");
    assert!(!m.round_durations_s.is_empty(), "no round completed");
}

#[test]
fn timed_hybrid_noiseless_dp_matches_clear() {
    // Goal far above what the concurrency can deliver inside a deadline:
    // releases come from the deadline path, so DP releases ride the exact
    // deadline events (partial buffers are noised and accounted too).
    let (_, private) = assert_noiseless_dp_matches_clear(
        TaskConfig::timed_hybrid_task("hybrid", 24, 2_000, 600.0),
        2.0,
    );
    let m = &private.single().metrics;
    assert!(m.server_updates > 3, "deadline releases missing");
    assert!(
        m.aggregated_updates < 2_000 * m.server_updates,
        "every release met the goal; the deadline path went untested"
    );
}

#[test]
fn noiseless_dp_over_secagg_matches_secagg() {
    // Stacked dp(secure(fedbuff)) with zero noise vs secure(fedbuff):
    // the clipped-then-masked path must be bit-identical to the masked
    // path when clipping is the identity.
    let task = || TaskConfig::async_task("secure", 32, 8).with_secagg(SecAggMode::AsyncSecAgg);
    let secure = run(task(), 1.0, Parallelism::sequential());
    let stacked = run(task().with_dp(noop_dp()), 1.0, Parallelism::sequential());
    let (s, d) = (&secure.single().metrics, &stacked.single().metrics);
    assert_eq!(s.comm_trips, d.comm_trips);
    assert_eq!(s.server_updates, d.server_updates);
    assert_eq!(s.secure.masked_updates, d.secure.masked_updates);
    assert_eq!(s.secure.tsa_key_releases, d.secure.tsa_key_releases);
    assert_eq!(
        s.secure.quantization_error_trace,
        d.secure.quantization_error_trace
    );
    assert_eq!(
        secure.single().final_params,
        stacked.single().final_params,
        "noiseless DP over SecAgg must be bit-exact against SecAgg alone"
    );
    assert_eq!(d.dp.releases, d.server_updates);
    assert_eq!(
        d.secure.out_of_range_releases, 0,
        "masking the clipped delta must keep decode and reference aligned"
    );
}

#[test]
fn eval_loss_degrades_monotonically_with_the_noise_multiplier() {
    // The privacy-utility trade-off, in miniature: same scenario, rising
    // noise multiplier at a fixed clip bound -> final eval loss rises while
    // the claimed ε falls.  Uniform (non-example) weighting keeps the
    // buffer's weight total at ~K, so the per-release noise std
    // `C·z/weight_total` is material, and the multipliers are spaced far
    // enough apart that the ordering is deterministic for this seed.
    let run_at = |noise_multiplier: f64| {
        run(
            TaskConfig::async_task("sweep", 32, 8)
                .with_example_weighting(false)
                .with_dp(
                    DpConfig::new(2.0, noise_multiplier)
                        .with_sampling_rate(0.05)
                        .with_target_delta(1e-6),
                ),
            1.0,
            Parallelism::sequential(),
        )
    };
    let multipliers = [0.0, 0.5, 4.0];
    let reports: Vec<Report> = multipliers.iter().map(|&z| run_at(z)).collect();
    for report in &reports {
        let task = report.single();
        assert!(task.server_updates() > 10, "sweep scenario barely ran");
        assert_eq!(task.metrics.dp.releases, task.metrics.server_updates);
    }
    let losses: Vec<f64> = reports.iter().map(|r| r.single().final_loss).collect();
    for pair in losses.windows(2) {
        assert!(
            pair[0] < pair[1],
            "loss did not degrade with noise: {losses:?}"
        );
    }
    // The zero-noise run still learns.
    assert!(reports[0].single().final_loss < reports[0].single().initial_loss);
    // And ε moves the other way: infinite at zero noise, then decreasing.
    let epsilons: Vec<f64> = reports
        .iter()
        .map(|r| r.single().metrics.dp.cumulative_epsilon)
        .collect();
    assert_eq!(epsilons[0], f64::INFINITY);
    assert!(epsilons[1].is_finite());
    assert!(
        epsilons[2] < epsilons[1],
        "more noise must claim less privacy loss: {epsilons:?}"
    );
}

#[test]
fn cumulative_epsilon_trace_is_monotone_over_the_run() {
    let report = run(
        TaskConfig::async_task("trace", 32, 8)
            .with_dp(DpConfig::new(2.0, 1.0).with_sampling_rate(0.05)),
        1.0,
        Parallelism::sequential(),
    );
    let trace = &report.single().metrics.dp.release_trace;
    assert!(trace.len() > 10, "too few releases to call it a trace");
    for pair in trace.windows(2) {
        assert!(pair[0].time_s <= pair[1].time_s);
        assert!(pair[0].cumulative_epsilon <= pair[1].cumulative_epsilon);
    }
    assert_eq!(
        trace.last().unwrap().cumulative_epsilon,
        report.single().metrics.dp.cumulative_epsilon
    );
    assert_eq!(
        report.single().summary.cumulative_epsilon,
        report.single().metrics.dp.cumulative_epsilon,
        "the summary must carry the final ε"
    );
}
