//! The secure-vs-clear equivalence suite: the proof that AsyncSecAgg is
//! wired through the whole Scenario pipeline without changing anything the
//! paper's evaluation measures.
//!
//! For each aggregation strategy, the *identical* scenario is run twice —
//! once in the clear and once with `SecAggMode::AsyncSecAgg` — and the two
//! runs must agree on every protocol-level count (selections, uploads,
//! accepts/rejects/discards, server updates) because the secure pipeline
//! only changes the numerics, never the policy; the final model parameters
//! must match to fixed-point tolerance; and every secure release must have
//! been a TSA key release over a full buffer.  A final test pins that the
//! secure path keeps the executor's bit-identity guarantee across thread
//! counts.

use papaya_core::config::SecAggMode;
use papaya_core::TaskConfig;
use papaya_data::population::{Population, PopulationConfig};
use papaya_sim::scenario::{EvalPolicy, Report, RunLimits, Scenario};
use papaya_sim::Parallelism;

fn population(n: usize) -> Population {
    Population::generate(
        &PopulationConfig::default().with_size(n).with_dropout(0.05),
        29,
    )
}

fn run(task: TaskConfig, hours: f64, parallelism: Parallelism) -> Report {
    Scenario::builder()
        .population(population(600))
        .task(task)
        .limits(RunLimits::default().with_max_virtual_time_hours(hours))
        .eval(EvalPolicy::default().with_interval_s(600.0))
        .parallelism(parallelism)
        .seed(41)
        .build()
        .run()
}

/// Runs `task` in the clear and through AsyncSecAgg and asserts the
/// equivalence contract.  Returns `(clear, secure)` for extra per-strategy
/// assertions.
fn assert_secure_matches_clear(task: TaskConfig, hours: f64) -> (Report, Report) {
    let clear = run(
        task.clone().with_secagg(SecAggMode::Disabled),
        hours,
        Parallelism::sequential(),
    );
    let secure = run(
        task.with_secagg(SecAggMode::AsyncSecAgg),
        hours,
        Parallelism::sequential(),
    );
    let (c, s) = (&clear.single().metrics, &secure.single().metrics);

    // Identical trajectory: masking must not change a single policy
    // decision.
    assert_eq!(c.comm_trips, s.comm_trips);
    assert_eq!(c.server_updates, s.server_updates);
    assert_eq!(c.aggregated_updates, s.aggregated_updates);
    assert_eq!(c.rejected_stale_updates, s.rejected_stale_updates);
    assert_eq!(c.discarded_updates, s.discarded_updates);
    assert_eq!(c.failed_participations, s.failed_participations);
    assert_eq!(c.participations, s.participations);
    assert!(s.server_updates > 0, "nothing was aggregated");

    // Secure bookkeeping: every accepted upload was masked, every server
    // update was a full-buffer key release, and the TEE saw only
    // O(1) bytes per client.
    assert_eq!(s.secure.masked_updates, s.aggregated_updates);
    assert_eq!(s.secure.tsa_key_releases, s.server_updates);
    assert_eq!(
        s.secure.quantization_error_trace.len(),
        s.server_updates as usize,
        "one quantization sample per key release"
    );
    let per_client = s.secure.tee_bytes_in_per_client();
    assert!(
        per_client > 0.0 && per_client < 2_048.0,
        "TEE traffic should be a few hundred bytes/client, got {per_client}"
    );
    assert_eq!(c.secure.masked_updates, 0, "clear run ran the protocol");

    // Final parameters agree to fixed-point tolerance.  Per release the
    // element-wise decode error is bounded by (accepted+1)/2 quanta of the
    // 2^-16 grid divided by the weight total; summed over every release the
    // budget below is ~100x looser than the observed gap.
    let clear_params = &clear.single().final_params;
    let secure_params = &secure.single().final_params;
    let max_diff = clear_params
        .as_slice()
        .iter()
        .zip(secure_params.as_slice())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);
    let budget = 1e-3 + s.server_updates as f32 * 1e-4;
    assert!(
        max_diff <= budget,
        "secure diverged from clear: {max_diff} > {budget}"
    );
    assert!(
        s.secure.max_quantization_error() < 1e-3,
        "per-release quantization error too large: {}",
        s.secure.max_quantization_error()
    );
    assert_eq!(
        s.secure.out_of_range_releases, 0,
        "the overflow detector false-positived on a healthy run"
    );

    // And the learning outcome is indistinguishable.
    let (cl, sl) = (clear.single().final_loss, secure.single().final_loss);
    assert!(sl < clear.single().initial_loss, "secure run did not learn");
    assert!(
        (cl - sl).abs() <= 0.02 * cl.abs().max(1e-9),
        "losses diverged: clear {cl} vs secure {sl}"
    );
    (clear, secure)
}

#[test]
fn fedbuff_secure_run_matches_clear_run() {
    let (_, secure) = assert_secure_matches_clear(TaskConfig::async_task("fedbuff", 32, 8), 1.0);
    let m = &secure.single().metrics;
    assert!(secure.single().server_updates() > 10);
    // Policy-dropped masked uploads are exactly the aggregator-level
    // rejections (the runtime aborts most doomed-stale clients before they
    // upload, so both are usually zero here; the masked-discard path itself
    // is pinned by the secure-aggregator unit and conformance suites).
    assert_eq!(
        m.secure.masked_discarded,
        m.rejected_stale_updates + m.discarded_updates
    );
}

#[test]
fn sync_round_secure_run_matches_clear_run() {
    let (_, secure) = assert_secure_matches_clear(TaskConfig::sync_task("sync", 30, 0.3), 2.0);
    let m = &secure.single().metrics;
    // Over-selection waste: stragglers were aborted by closing rounds, and
    // every completed round was one full-cohort key release.
    assert!(m.aborted_by_round_end > 0, "no over-selection waste");
    assert!(!m.round_durations_s.is_empty(), "no round completed");
}

#[test]
fn timed_hybrid_secure_run_matches_clear_run() {
    // Goal far above what the concurrency can deliver inside a deadline:
    // releases come from the deadline, so the exact-deadline event
    // machinery drives partial-buffer TSA key releases (threshold 1).
    let (_, secure) = assert_secure_matches_clear(
        TaskConfig::timed_hybrid_task("hybrid", 24, 2_000, 600.0),
        2.0,
    );
    let m = &secure.single().metrics;
    assert!(m.server_updates > 3, "deadline releases missing");
    assert!(
        m.aggregated_updates < 2_000 * m.server_updates,
        "every release met the goal; the deadline path went untested"
    );
}

/// Runs `task` through the session-cached protocol (`AsyncSecAgg`) and the
/// legacy per-update key-exchange protocol (`AsyncSecAggPerUpdate`) and
/// asserts the two are **bitwise** interchangeable: masks cancel exactly in
/// both modes, so every released aggregate — and therefore the final model —
/// must be bit-identical, while the session mode does strictly less TEE
/// traffic and key-exchange work.  Fingerprints are *expected* to differ
/// (TEE byte counts and cache counters are hashed), so the comparison is on
/// parameters and policy counters, never fingerprints.
fn assert_session_matches_per_update(task: TaskConfig, hours: f64) -> (Report, Report) {
    let session = run(
        task.clone().with_secagg(SecAggMode::AsyncSecAgg),
        hours,
        Parallelism::sequential(),
    );
    let per_update = run(
        task.with_secagg(SecAggMode::AsyncSecAggPerUpdate),
        hours,
        Parallelism::sequential(),
    );
    let (s, p) = (&session.single().metrics, &per_update.single().metrics);

    // Identical policy trajectory.
    assert_eq!(s.comm_trips, p.comm_trips);
    assert_eq!(s.server_updates, p.server_updates);
    assert_eq!(s.aggregated_updates, p.aggregated_updates);
    assert_eq!(s.rejected_stale_updates, p.rejected_stale_updates);
    assert_eq!(s.discarded_updates, p.discarded_updates);
    assert_eq!(s.participations, p.participations);
    assert_eq!(s.secure.masked_updates, p.secure.masked_updates);
    assert_eq!(s.secure.tsa_key_releases, p.secure.tsa_key_releases);
    assert!(s.server_updates > 0, "nothing was aggregated");

    // Bitwise-identical learning: the one-time pads differ between the two
    // key schedules but cancel exactly inside each released buffer sum.
    assert_eq!(
        session.single().final_params.as_slice(),
        per_update.single().final_params.as_slice(),
        "session-cached releases must be bit-identical to per-update releases"
    );
    assert_eq!(session.single().final_loss, per_update.single().final_loss);

    // The cache must actually amortize: resumed participations skip the DH
    // exchange entirely, and the per-client TEE ingress drops from a full
    // CompletingMessage to a 16-byte MaskRef.
    assert!(s.secure.session_cache_misses > 0, "no first contacts");
    assert!(s.secure.dh_exchanges_saved > 0, "cache never resumed");
    assert_eq!(s.secure.dh_exchanges_saved, s.secure.session_cache_hits);
    assert_eq!(p.secure.dh_exchanges_saved, 0, "legacy mode has no cache");
    assert!(
        s.secure.tee_bytes_in < p.secure.tee_bytes_in,
        "session mode must shrink TEE ingress: {} vs {}",
        s.secure.tee_bytes_in,
        p.secure.tee_bytes_in
    );
    (session, per_update)
}

#[test]
fn fedbuff_session_cache_matches_per_update_exchange() {
    assert_session_matches_per_update(TaskConfig::async_task("fedbuff", 32, 8), 1.0);
}

#[test]
fn sync_round_session_cache_matches_per_update_exchange() {
    assert_session_matches_per_update(TaskConfig::sync_task("sync", 30, 0.3), 2.0);
}

#[test]
fn timed_hybrid_session_cache_matches_per_update_exchange() {
    assert_session_matches_per_update(
        TaskConfig::timed_hybrid_task("hybrid", 24, 2_000, 600.0),
        2.0,
    );
}

#[test]
fn dp_stacked_session_cache_matches_per_update_exchange() {
    // DP goes outermost; its noise lands on the decoded aggregate, which is
    // bit-identical between the two key schedules, so the noised model must
    // be too.
    use papaya_core::dp::DpConfig;
    let task = TaskConfig::async_task("dp-secure", 32, 8).with_dp(DpConfig::new(2.0, 0.5));
    let (session, _) = assert_session_matches_per_update(task, 1.0);
    let m = &session.single().metrics;
    assert!(m.dp.releases > 0, "DP pipeline never released");
    assert!(m.dp.cumulative_epsilon > 0.0, "accountant never charged");
}

#[test]
fn secure_fingerprint_is_thread_count_invariant() {
    // Acceptance criterion: a secure scenario's fingerprint must be
    // bit-identical at any Parallelism setting.
    let task = || TaskConfig::async_task("secure", 32, 8).with_secagg(SecAggMode::AsyncSecAgg);
    let sequential = run(task(), 0.5, Parallelism::sequential());
    assert!(sequential.single().metrics.secure.tsa_key_releases > 0);
    for workers in [1, 4] {
        let parallel = run(task(), 0.5, Parallelism(workers));
        assert_eq!(
            sequential.fingerprint(),
            parallel.fingerprint(),
            "secure run diverged at {workers} workers"
        );
    }
}
