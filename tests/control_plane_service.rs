//! The event-sourced control plane, end to end: property tests proving that
//! replaying the event log reconstructs the live Coordinator bit-for-bit
//! under arbitrary operation interleavings, that (checkpoint + log suffix)
//! equals full replay, and that a mid-run checkpoint/restore of the control
//! plane leaves a whole simulation's `Report::fingerprint` unchanged — at
//! any thread count.

use papaya_core::TaskConfig;
use papaya_data::population::{Population, PopulationConfig};
use papaya_sim::cluster::TaskSpec;
use papaya_sim::control_plane::ControlPlaneService;
use papaya_sim::scenario::{EvalPolicy, FleetSpec, Report, RunLimits, Scenario};
use papaya_sim::Parallelism;
use proptest::prelude::*;

fn spec(id: usize) -> TaskSpec {
    TaskSpec {
        id,
        name: format!("task-{id}"),
        concurrency: 50 + 10 * id,
        model_size_bytes: 1_000_000,
        min_capability_tier: (id % 3) as u8,
    }
}

/// One scripted operation against the service.  `(op, id, tier)` tuples come
/// from proptest; time advances by ten virtual seconds per step so heartbeat
/// leases genuinely expire under some interleavings (sweeps then orphan or
/// reassign tasks, and reconcile passes fire).
fn apply_op(service: &mut ControlPlaneService, step: usize, op: u8, id: usize, tier: u8) {
    let now = 10.0 * step as f64;
    match op % 6 {
        0 => {
            // Heartbeat a known — or unknown, hence auto-registered — id.
            service.heartbeat(id, now);
        }
        1 => {
            service.submit_task(spec(service.coordinator().task_ids().len()));
        }
        2 => {
            let tasks = service.coordinator().task_ids();
            if let Some(&task) = tasks.get(id % tasks.len().max(1)) {
                service.report_demand(task, 1 + id);
            }
        }
        3 => {
            service.assign_client(tier % 3);
        }
        4 => {
            service.detect_failures(now);
        }
        _ => {
            if service.needs_reconciliation() {
                service.reconcile(now);
            }
        }
    }
}

proptest! {
    /// Replaying the full log reconstructs the live state exactly, for any
    /// interleaving of heartbeats, submissions, demand reports, RNG-drawing
    /// client assignments, failure sweeps, and reconcile passes.
    #[test]
    fn replay_equals_live_under_any_interleaving(
        seed in any::<u64>(),
        ops in proptest::collection::vec((0u8..6, 0usize..5, 0u8..3), 1..80),
    ) {
        let mut service = ControlPlaneService::new(25.0, seed).retain_full_log();
        service.register_aggregator(0, 0.0);
        service.register_aggregator(1, 0.0);
        service.submit_task(spec(0));
        for (step, &(op, id, tier)) in ops.iter().enumerate() {
            apply_op(&mut service, step, op, id, tier);
        }
        let replayed = ControlPlaneService::replay(service.log());
        prop_assert_eq!(replayed.coordinator(), service.coordinator());
        prop_assert_eq!(replayed.counters(), service.counters());
    }

    /// Restoring from (checkpoint + suffix) equals both the live state and a
    /// full replay-from-genesis, wherever the checkpoint lands in the run.
    #[test]
    fn checkpoint_plus_suffix_equals_full_replay(
        seed in any::<u64>(),
        ops in proptest::collection::vec((0u8..6, 0usize..5, 0u8..3), 2..80),
        cut in 0usize..80,
    ) {
        let mut service = ControlPlaneService::new(25.0, seed).retain_full_log();
        service.register_aggregator(0, 0.0);
        service.register_aggregator(1, 0.0);
        service.submit_task(spec(0));
        let cut = cut % ops.len();
        for (step, &(op, id, tier)) in ops.iter().enumerate() {
            if step == cut {
                service.checkpoint_now();
            }
            apply_op(&mut service, step, op, id, tier);
        }
        let live_coordinator = service.coordinator().clone();
        let live_counters = service.counters().clone();

        let replayed = ControlPlaneService::replay(service.log());
        service.restore_from_checkpoint();

        prop_assert_eq!(service.coordinator(), &live_coordinator);
        prop_assert_eq!(service.counters(), &live_counters);
        prop_assert_eq!(replayed.coordinator(), &live_coordinator);
        prop_assert_eq!(replayed.counters(), &live_counters);
    }
}

/// A fleet scenario stressful enough to exercise the whole control plane:
/// a partial failure, then total loss, then a recovery that triggers the
/// reconcile pass.  `restore_at` additionally throws the live control-plane
/// state away mid-run and rebuilds it from (checkpoint + log suffix).
fn turbulent_run(restore_at: Option<f64>, parallelism: Parallelism) -> Report {
    let population = Population::generate(&PopulationConfig::default().with_size(1500), 7);
    let mut builder = Scenario::builder()
        .population(population)
        .task(TaskConfig::async_task("keyboard-lm", 48, 12))
        .task(TaskConfig::async_task("smart-reply", 24, 8))
        .task(TaskConfig::sync_task("photo-ranker", 30, 0.3))
        .fleet(FleetSpec::new(2, 3))
        .limits(RunLimits::default().with_max_virtual_time_hours(1.5))
        .eval(EvalPolicy::default().with_interval_s(300.0))
        .parallelism(parallelism)
        .crash_at(1200.0, 0)
        .crash_at(1800.0, 1)
        // Aggregator 0 comes back — NOT the orphans' owner — so recovery
        // genuinely needs the reconciler to re-place every orphan.
        .recover_at(2700.0, 0)
        .seed(7);
    if let Some(time_s) = restore_at {
        builder = builder.restore_control_plane_at(time_s);
    }
    builder.build().run()
}

/// The tentpole acceptance check: a run whose control plane is checkpointed
/// and restored mid-flight produces a `Report::fingerprint` bit-identical
/// to the uninterrupted run — sequentially and at `Parallelism(4)`.
#[test]
fn mid_run_restore_leaves_the_fingerprint_bit_identical() {
    let uninterrupted = turbulent_run(None, Parallelism::sequential());
    let reference = uninterrupted.fingerprint();

    // The restore lands between the total loss and the recovery — the
    // nastiest window, with orphans outstanding and the fleet dead.
    let restored = turbulent_run(Some(2_000.0), Parallelism::sequential());
    assert_eq!(
        reference,
        restored.fingerprint(),
        "a control-plane restore changed the simulation"
    );
    assert_eq!(restored.fleet.control_plane.coordinator_restores, 1);
    assert_eq!(uninterrupted.fleet.control_plane.coordinator_restores, 0);

    let parallelism = Parallelism(4);
    assert_eq!(reference, turbulent_run(None, parallelism).fingerprint());
    assert_eq!(
        reference,
        turbulent_run(Some(2_000.0), parallelism).fingerprint(),
        "restore not bit-identical at {parallelism:?}"
    );
}

/// The turbulence itself is real: the run sees failures, orphans, a
/// recovery, and reconcile corrections, and still converges.
#[test]
fn turbulent_run_exercises_the_reconciler() {
    let report = turbulent_run(None, Parallelism::sequential());
    let cp = &report.fleet.control_plane;
    assert_eq!(cp.aggregator_failures, 2);
    assert_eq!(cp.aggregator_recoveries, 1);
    assert!(cp.tasks_orphaned > 0, "total loss orphaned nothing");
    assert_eq!(cp.tasks_reconciled, cp.tasks_orphaned);
    assert!(cp.heartbeats > 0);
    assert!(cp.tasks_placed >= 3 + cp.tasks_reconciled);
    assert!(cp.control_log_events > 0);
    for task in &report.tasks {
        assert!(task.comm_trips() > 0, "task {} starved", task.name);
    }
}
