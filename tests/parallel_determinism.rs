//! Determinism suite for the parallel client-training executor.
//!
//! The contract of `papaya_sim::executor` is that a scenario's [`Report`] is
//! **bit-identical** at every thread count — the worker pool only moves pure
//! `ClientTrainer::train` computations off the event-loop thread, and the
//! loop consumes results in strict event order.  These tests pin that
//! contract for all three aggregation strategies on the direct path, for
//! the legacy `Simulation` shim, and for a fleet scenario with an injected
//! Aggregator crash (which exercises discarded speculative work: dropouts,
//! round aborts, in-transit losses, failover).
//!
//! Comparison is by [`Report::fingerprint`], a digest over every counter,
//! the full loss/utilization/participation traces, and the bit patterns of
//! the final model parameters.

use papaya_core::config::SecAggMode;
use papaya_core::{AdversarySpec, DpConfig, Malice, RobustConfig, RobustDefense, TaskConfig};
use papaya_data::population::{Population, PopulationConfig};
use papaya_sim::scenario::{EvalPolicy, FleetSpec, Report, RunLimits, Scenario, ScenarioBuilder};
use papaya_sim::Parallelism;

fn population(n: usize) -> Population {
    Population::generate(
        &PopulationConfig::default().with_size(n).with_dropout(0.1),
        23,
    )
}

/// Runs the same composition at the pre-existing sequential path,
/// `Parallelism(1)`, and `Parallelism(4)`, and asserts all three reports
/// are bit-identical.  Returns the sequential report for extra assertions.
fn assert_identical_across_thread_counts(build: impl Fn() -> ScenarioBuilder) -> Report {
    let run = |parallelism: Parallelism| build().parallelism(parallelism).build().run();
    let sequential = run(Parallelism::sequential());
    let reference = sequential.fingerprint();
    for parallelism in [Parallelism(1), Parallelism(4)] {
        let parallel = run(parallelism);
        assert_eq!(
            reference,
            parallel.fingerprint(),
            "report diverged at {parallelism:?}"
        );
        // Fingerprint equality must mean parameter equality; spot-check the
        // strongest field directly too.
        for (a, b) in sequential.tasks.iter().zip(parallel.tasks.iter()) {
            assert_eq!(
                a.final_params, b.final_params,
                "params diverged for {}",
                a.name
            );
        }
    }
    sequential
}

#[test]
fn fedbuff_direct_scenario_is_bit_identical() {
    let report = assert_identical_across_thread_counts(|| {
        Scenario::builder()
            .population(population(700))
            .task(TaskConfig::async_task("fedbuff", 48, 12))
            .limits(RunLimits::default().with_max_virtual_time_hours(1.0))
            .eval(EvalPolicy::default().with_interval_s(600.0))
            .seed(31)
    });
    assert!(report.single().server_updates() > 0);
    // Dropouts happened, so speculative work really was discarded.
    assert!(report.single().metrics.failed_participations > 0);
}

#[test]
fn sync_round_direct_scenario_is_bit_identical() {
    let report = assert_identical_across_thread_counts(|| {
        Scenario::builder()
            .population(population(700))
            // Over-selection: round-end aborts discard prefetched results.
            .task(TaskConfig::sync_task("sync", 40, 0.3))
            .limits(RunLimits::default().with_max_virtual_time_hours(2.0))
            .eval(EvalPolicy::default().with_interval_s(600.0))
            .seed(32)
    });
    assert!(report.single().metrics.aborted_by_round_end > 0);
}

#[test]
fn timed_hybrid_direct_scenario_is_bit_identical() {
    let report = assert_identical_across_thread_counts(|| {
        Scenario::builder()
            .population(population(500))
            .task(TaskConfig::timed_hybrid_task("hybrid", 24, 40, 240.0))
            .limits(RunLimits::default().with_max_virtual_time_hours(2.0))
            .eval(EvalPolicy::default().with_interval_s(600.0))
            .seed(33)
    });
    assert!(report.single().server_updates() > 0);
}

#[test]
fn secagg_direct_scenario_is_bit_identical() {
    // The whole AsyncSecAgg pipeline (per-update DH exchanges, masking, TSA
    // key releases) runs on the event-loop thread in event order, so a
    // secure report — including the masked counters, TEE byte counts, and
    // the quantization-error trace the fingerprint hashes — must stay
    // bit-identical at any thread count.
    let report = assert_identical_across_thread_counts(|| {
        Scenario::builder()
            .population(population(500))
            .task(
                TaskConfig::async_task("secure-fedbuff", 32, 8)
                    .with_secagg(SecAggMode::AsyncSecAgg),
            )
            .limits(RunLimits::default().with_max_virtual_time_hours(0.75))
            .eval(EvalPolicy::default().with_interval_s(600.0))
            .seed(36)
    });
    let metrics = &report.single().metrics;
    assert!(
        metrics.secure.tsa_key_releases > 0,
        "no secure release happened"
    );
    assert_eq!(metrics.secure.tsa_key_releases, metrics.server_updates);
}

#[test]
fn dp_direct_scenario_is_bit_identical() {
    // The DP pipeline draws real noise (noise_multiplier > 0) from its own
    // seeded stream on the event-loop thread, so a noised report — clip
    // counters, per-release noise std, and the cumulative ε trace the
    // fingerprint hashes — must stay bit-identical at any thread count.
    let report = assert_identical_across_thread_counts(|| {
        Scenario::builder()
            .population(population(500))
            .task(
                TaskConfig::async_task("dp-fedbuff", 32, 8)
                    .with_dp(DpConfig::new(2.0, 1.0).with_sampling_rate(0.05)),
            )
            .limits(RunLimits::default().with_max_virtual_time_hours(0.75))
            .eval(EvalPolicy::default().with_interval_s(600.0))
            .seed(37)
    });
    let metrics = &report.single().metrics;
    assert!(metrics.dp.releases > 0, "no DP release happened");
    assert_eq!(metrics.dp.releases, metrics.server_updates);
    assert!(
        metrics.dp.release_trace.iter().any(|r| r.noise_std > 0.0),
        "the determinism claim must cover actual noise"
    );
}

#[test]
fn stacked_dp_secagg_scenario_is_bit_identical() {
    // The full privacy stack — clipping, masking, TSA key releases, decode,
    // noise, accounting — all on the event-loop thread, bit-identical at
    // any Parallelism.
    let report = assert_identical_across_thread_counts(|| {
        Scenario::builder()
            .population(population(400))
            .task(
                TaskConfig::async_task("dp-secagg", 24, 6)
                    .with_secagg(SecAggMode::AsyncSecAgg)
                    .with_dp(DpConfig::new(2.0, 0.5).with_sampling_rate(0.05)),
            )
            .limits(RunLimits::default().with_max_virtual_time_hours(0.5))
            .eval(EvalPolicy::default().with_interval_s(600.0))
            .seed(38)
    });
    let metrics = &report.single().metrics;
    assert!(metrics.dp.releases > 0 && metrics.secure.tsa_key_releases > 0);
    assert_eq!(metrics.dp.releases, metrics.secure.tsa_key_releases);
    assert_eq!(metrics.dp.releases, metrics.server_updates);
}

#[test]
fn robust_defense_under_attack_is_bit_identical() {
    // Byzantine membership hashing, payload corruption, defense rejections,
    // and estimator releases all run on the event-loop thread in event
    // order, so an attacked-and-defended report — including the attack
    // trace and robustness telemetry the fingerprint hashes — must stay
    // bit-identical at any thread count.
    let report = assert_identical_across_thread_counts(|| {
        Scenario::builder()
            .population(population(500))
            .task(
                TaskConfig::async_task("defended", 32, 8)
                    .with_robust(RobustConfig::new(RobustDefense::TrimmedMean {
                        trim_fraction: 0.25,
                    }))
                    .with_adversary(AdversarySpec::new(0.2, Malice::SignFlip { scale: 5.0 })),
            )
            .limits(RunLimits::default().with_max_virtual_time_hours(0.75))
            .eval(EvalPolicy::default().with_interval_s(600.0))
            .seed(39)
    });
    let metrics = &report.single().metrics;
    assert!(metrics.attacked_updates > 0, "no attack happened");
    assert!(
        metrics.robust.estimator_releases > 0,
        "the defense never engaged"
    );
}

#[test]
fn staleness_liar_with_secure_median_stack_is_bit_identical() {
    // The staleness liar retrains inline against the frozen initial model
    // on both executor paths (the speculative pool result is discarded);
    // stacked under SecAgg with a coordinate-median defense this pins the
    // trickiest executor interplay the adversary machinery has.
    let report = assert_identical_across_thread_counts(|| {
        Scenario::builder()
            .population(population(400))
            .task(
                TaskConfig::async_task("liar", 24, 6)
                    .with_secagg(SecAggMode::AsyncSecAgg)
                    .with_robust(RobustConfig::new(RobustDefense::CoordinateMedian))
                    .with_adversary(AdversarySpec::new(0.25, Malice::StalenessLiar)),
            )
            .limits(RunLimits::default().with_max_virtual_time_hours(0.5))
            .eval(EvalPolicy::default().with_interval_s(600.0))
            .seed(40)
    });
    let metrics = &report.single().metrics;
    assert!(metrics.attacked_updates > 0, "no lie was told");
    assert_eq!(metrics.robust.estimator_releases, metrics.server_updates);
    assert!(metrics.secure.masked_updates > 0);
}

#[test]
fn fleet_with_crash_is_bit_identical() {
    let report = assert_identical_across_thread_counts(|| {
        Scenario::builder()
            .population(population(1500))
            .task(TaskConfig::async_task("a", 48, 12))
            .task(TaskConfig::sync_task("s", 30, 0.3))
            .task(TaskConfig::timed_hybrid_task("h", 16, 32, 600.0))
            .fleet(FleetSpec::new(2, 2))
            .crash_at(1200.0, 0)
            .limits(RunLimits::default().with_max_virtual_time_hours(1.5))
            .eval(EvalPolicy::default().with_interval_s(600.0))
            .seed(34)
    });
    assert_eq!(report.tasks.len(), 3);
    // The crash fired, so failover paths (buffered-update loss, lazy upload
    // failures) ran under the executor and stayed deterministic.
    assert_eq!(report.fleet.control_plane.aggregator_failures, 1);
}

#[test]
fn max_client_updates_stop_is_bit_identical() {
    // Stopping mid-stream leaves speculative jobs in flight at executor
    // drop; the report must not depend on their fate.
    let report = assert_identical_across_thread_counts(|| {
        Scenario::builder()
            .population(population(600))
            .task(TaskConfig::async_task("budget", 64, 8))
            .limits(
                RunLimits::default()
                    .with_max_virtual_time_hours(20.0)
                    .with_max_client_updates(400),
            )
            .eval(EvalPolicy::default().with_interval_s(600.0))
            .seed(35)
    });
    assert_eq!(report.fleet.total_comm_trips, 400);
}

#[test]
fn different_seeds_produce_different_fingerprints() {
    // Guard against a degenerate fingerprint that hashes everything to the
    // same value.
    let run = |seed: u64| {
        Scenario::builder()
            .population(population(300))
            .task(TaskConfig::async_task("t", 16, 4))
            .limits(RunLimits::default().with_max_virtual_time_hours(0.25))
            .eval(EvalPolicy::default().with_interval_s(600.0))
            .seed(seed)
            .build()
            .run()
    };
    assert_ne!(run(1).fingerprint(), run(2).fingerprint());
}
