//! Secure aggregation under Aggregator failure (the paper's fault-tolerance
//! story, privately): when the Aggregator holding a secure task's masked
//! buffer dies, the buffered masked updates are dropped **without** a TSA
//! key release — the TSA never unmasks a partial buffer, so the crash leaks
//! nothing — and the task converges anyway after the Coordinator reassigns
//! it to a survivor.

use papaya_core::config::SecAggMode;
use papaya_core::TaskConfig;
use papaya_data::population::{Population, PopulationConfig};
use papaya_sim::scenario::{EvalPolicy, FleetSpec, Report, Scenario};
use papaya_sim::RunLimits;

fn run_fleet(crash: Option<(f64, usize)>) -> Report {
    let population = Population::generate(
        &PopulationConfig::default()
            .with_size(1_200)
            .with_dropout(0.05),
        71,
    );
    // Both tasks run securely, so whichever Aggregator the crash hits, a
    // masked buffer is lost.
    let mut builder = Scenario::builder()
        .population(population)
        .task(TaskConfig::async_task("secure-a", 48, 12))
        .task(TaskConfig::async_task("secure-b", 32, 8))
        .secagg(SecAggMode::AsyncSecAgg)
        .fleet(FleetSpec::new(2, 2))
        .limits(RunLimits::default().with_max_virtual_time_hours(2.0))
        .eval(EvalPolicy::default().with_interval_s(600.0))
        .seed(71);
    if let Some((time_s, aggregator)) = crash {
        builder = builder.crash_at(time_s, aggregator);
    }
    builder.build().run()
}

#[test]
fn aggregator_crash_drops_masked_buffer_without_key_release() {
    let report = run_fleet(Some((1_800.0, 0)));

    assert_eq!(report.fleet.control_plane.aggregator_failures, 1);
    assert!(
        report.fleet.control_plane.task_reassignments >= 1,
        "orphaned task was never reassigned"
    );

    let total_lost: u64 = report
        .tasks
        .iter()
        .map(|t| t.metrics.lost_buffered_updates)
        .sum();
    let total_buffers_dropped: u64 = report
        .tasks
        .iter()
        .map(|t| t.metrics.secure.buffers_dropped_unreleased)
        .sum();
    assert!(total_lost > 0, "crash landed on an empty buffer; re-seed");
    assert!(
        total_buffers_dropped >= 1,
        "masked buffer was not dropped on the secure path"
    );

    for task in &report.tasks {
        let m = &task.metrics;
        // The TSA released exactly one key per server update: no partial
        // buffer — in particular not the crashed one — was ever unmasked.
        assert_eq!(
            m.secure.tsa_key_releases, m.server_updates,
            "{}: partial-buffer unmask detected",
            task.name
        );
        assert_eq!(
            m.secure.masked_updates, m.aggregated_updates,
            "{}",
            task.name
        );
        // Post-crash convergence: the run kept training to a better loss.
        assert!(task.server_updates() > 0, "{}", task.name);
        assert!(
            task.final_loss < task.initial_loss,
            "{} did not converge past the crash: {} -> {}",
            task.name,
            task.initial_loss,
            task.final_loss
        );
    }
}

#[test]
fn aggregator_crash_invalidates_cached_sessions_and_forces_rehandshakes() {
    // A crash wipes the replacement TSA's session table (the enclave's
    // in-memory key cache dies with the machine), so every post-crash
    // participation on the reassigned task must pay a fresh DH handshake.
    // Observable fleet-wide: the crash run records strictly more
    // first-contact handshakes (cache misses) than the identical run
    // without a crash, where each client handshakes at most once per task.
    // (That rejected uploads pin no session state, and that a reset drops
    // the masked buffer without any key release, are pinned per-operation
    // by the SecureAggregator unit suite.)
    let crashed = run_fleet(Some((1_800.0, 0)));
    let healthy = run_fleet(None);

    let misses = |r: &Report| -> u64 {
        r.tasks
            .iter()
            .map(|t| t.metrics.secure.session_cache_misses)
            .sum()
    };
    let hits = |r: &Report| -> u64 {
        r.tasks
            .iter()
            .map(|t| t.metrics.secure.session_cache_hits)
            .sum()
    };
    assert!(hits(&healthy) > 0, "session cache never resumed");
    assert!(
        misses(&crashed) > misses(&healthy),
        "crash did not force re-handshakes: {} misses with crash vs {} without",
        misses(&crashed),
        misses(&healthy)
    );
    // The session cache keeps amortizing after the failover: resumed
    // participations still dominate first contacts over the whole run.
    assert!(
        hits(&crashed) > misses(&crashed),
        "cache stopped amortizing after the crash: {} hits vs {} misses",
        hits(&crashed),
        misses(&crashed)
    );
}
